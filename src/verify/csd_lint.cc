/**
 * @file
 * csd-lint: the standalone static-analysis driver.
 *
 * Runs verifyProgram() over every shipped workload and (with --tables,
 * or always under `all`) the translation-consistency/micro-table
 * audit. Known-leaky crypto victims are registered with expectLeak:
 * their leak.* findings are consumed as confirmations and reported as
 * a summary line instead of failures — a victim whose leak lint comes
 * back EMPTY is itself an error (leak.expected-miss), since it means
 * the taint configuration has a hole.
 *
 * --channels additionally runs the static side-channel prover
 * (verify/leak_prover.hh) over every confirmed site: channel, cache
 * sets, leakage bound, and the verdict under the victim's canonical
 * CSD defense configuration (the same ranges the Fig. 7 benches
 * program into the simulator). For the targets with a dynamic
 * measurement harness (rsa, aes) it then runs the actual attack loop
 * with an ObservationLedger (sec/channel_measure.hh) and cross-checks
 * the empirically measured bits/observation against the static proof
 * (verify/channel_crosscheck.hh): a dynamic leak above the static
 * bound, or measurable leakage through a proved-closed defense, is an
 * Error. --inject-dynamic-defect deliberately inflates the measured
 * values so CI can verify the cross-check actually fails.
 *
 * Exit status: 0 clean, 1 findings remain, 2 usage or internal error.
 * --json FILE additionally emits the machine-readable report for CI.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "csd/csd.hh"
#include "csd/mcu_presets.hh"
#include "sec/channel_measure.hh"
#include "verify/channel_crosscheck.hh"
#include "verify/leak_prover.hh"
#include "verify/mcu_prover.hh"
#include "verify/tier_equiv.hh"
#include "verify/verify.hh"
#include "workloads/aes.hh"
#include "workloads/blowfish.hh"
#include "workloads/rijndael.hh"
#include "workloads/rsa.hh"
#include "workloads/spec.hh"

namespace csd
{
namespace
{

struct LintTarget
{
    std::string name;
    /** Builds the program, the lint options, and (for victims) the
     *  canonical defense model + prover knobs for --channels. */
    std::function<Program(VerifyOptions &, DefenseModel &, ProveOptions &)>
        build;
};

constexpr unsigned rsaExponentBits = 24;

std::vector<LintTarget>
targets()
{
    std::vector<LintTarget> list;

    list.push_back({"rsa", [](VerifyOptions &opt, DefenseModel &defense,
                              ProveOptions &prove) {
        const RsaWorkload w = RsaWorkload::build(
            {0x12345678u, 0x9abcdef0u}, {0xfffffff1u, 0xdeadbeefu},
            0xb1e55ed, rsaExponentBits);
        opt.taintSources = {w.exponentRange};
        opt.expectLeak = true;
        // Canonical Fig. 7b defense: decoy fetches over rsa_multiply,
        // DIFT sources on the exponent and the running result.
        defense.enabled = true;
        defense.decoyIRange = w.multiplyRange;
        defense.taintSources = {w.exponentRange, w.resultRange};
        prove.keyLoopIterations = rsaExponentBits;
        return w.program;
    }});

    const auto aesTarget = [](bool decrypt) {
        return [decrypt](VerifyOptions &opt, DefenseModel &defense,
                         ProveOptions &) {
            const AesWorkload w = AesWorkload::build(
                {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab,
                 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}, decrypt);
            opt.taintSources = {w.keyRange};
            opt.expectLeak = true;
            // Canonical Fig. 7a defense: decoy loads over the T-tables.
            defense.enabled = true;
            defense.decoyDRange = w.tTableRange;
            defense.taintSources = {w.keyRange};
            return w.program;
        };
    };
    list.push_back({"aes", aesTarget(/*decrypt=*/false)});
    list.push_back({"aes-dec", aesTarget(/*decrypt=*/true)});

    list.push_back({"blowfish", [](VerifyOptions &opt,
                                   DefenseModel &defense, ProveOptions &) {
        const BlowfishWorkload w = BlowfishWorkload::build(
            {0x13, 0x37, 0xc0, 0xde, 0xfa, 0xce, 0xb0, 0x0c});
        opt.taintSources = {w.keyRange};
        opt.expectLeak = true;
        defense.enabled = true;
        defense.decoyDRange = w.sboxRange;
        defense.taintSources = {w.keyRange};
        return w.program;
    }});

    list.push_back({"rijndael", [](VerifyOptions &opt,
                                   DefenseModel &defense, ProveOptions &) {
        const RijndaelWorkload w = RijndaelWorkload::build(
            {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09,
             0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f});
        opt.taintSources = {w.keyRange};
        opt.expectLeak = true;
        defense.enabled = true;
        defense.decoyDRange = w.tTableRange;
        defense.taintSources = {w.keyRange};
        return w.program;
    }});

    for (const SpecPreset &preset : specPresets()) {
        list.push_back({"spec-" + preset.name,
                        [preset](VerifyOptions &, DefenseModel &,
                                 ProveOptions &) {
            return SpecWorkload::build(preset, /*phase_pairs=*/2).program;
        }});
    }

    return list;
}

/** The dynamic measurement harness for a target, if it has one. */
ChannelMeasurement (*measureFor(const std::string &name))(
    const ChannelMeasureOptions &)
{
    if (name == "rsa")
        return &measureRsaChannels;
    if (name == "aes")
        return &measureAesChannels;
    return nullptr;
}

/** JSON for one dynamic measurement (appended to "measured": [...]). */
std::string
measurementJson(const ChannelMeasurement &m)
{
    std::ostringstream os;
    os << "{\"target\": \"" << m.target << "\", \"records\": [";
    for (std::size_t i = 0; i < m.crossCheck.size(); ++i) {
        const MeasuredChannel &mc = m.crossCheck[i];
        os << (i ? ", " : "") << "{\"site\": \"" << mc.site
           << "\", \"channel\": \"" << channelName(mc.channel)
           << "\", \"defended\": " << (mc.defended ? "true" : "false")
           << ", \"set_granular\": "
           << (mc.setGranular ? "true" : "false")
           << ", \"measured_bits_per_observation\": "
           << mc.bitsPerObservation
           << ", \"observations\": " << mc.observations << "}";
    }
    os << "], \"total_observations\": " << m.observations << "}";
    return os.str();
}

/**
 * The SuperblockView --tiers runs under: the real one, or one with a
 * deliberate defect spliced in so CI can prove each tier.* check
 * actually fires (pattern of --inject-dynamic-defect). The injection
 * lives in the view, never in a real block, so the build under test
 * stays healthy.
 */
SuperblockView
tierView(const std::string &defect)
{
    SuperblockView view = SuperblockView::real();
    if (defect == "handler") {
        // Route every scalar load to the Nop handler: wrong semantics
        // AND a dropped memory timing probe.
        view.handlerOf = [](const SbOp &op) {
            return op.uop.op == MicroOpcode::Load ? SbHandler::Nop
                                                  : op.handler;
        };
    } else if (defect == "energy") {
        // Skew every precomputed scalar by a representable amount.
        view.energyOf = [](const SbOp &op) { return op.energy + 0.125; };
    } else if (defect == "guard") {
        // Drop the epoch compare from every macro boundary.
        view.guardsOf = [](const SbMacro &macro) {
            return static_cast<std::uint8_t>(macro.guards &
                                             ~sbGuardEpoch);
        };
    }
    return view;
}

/** JSON for one tier-equivalence sweep (appended to "tiers": [...]). */
std::string
tierAuditJson(const std::string &target, const char *config,
              const TierAudit &audit)
{
    std::ostringstream os;
    os << "{\"target\": \"" << target << "\", \"config\": \"" << config
       << "\", \"heads\": " << audit.heads
       << ", \"blocks\": " << audit.blocks
       << ", \"macros\": " << audit.macros
       << ", \"uops\": " << audit.uops << "}";
    return os.str();
}

/**
 * The McuBlobView --mcu runs under: the real one, or one with a
 * deliberate defect spliced in so CI can prove each mcu.* check
 * actually fires. Injection lives in the view, never in a blob or an
 * engine, so the build under test stays healthy (tierView pattern).
 */
McuBlobView
mcuView(const std::string &defect)
{
    McuBlobView view = McuBlobView::real();
    if (defect == "checksum") {
        view.checksumOf = [](const McuBlob &blob) {
            return mcuChecksum(blob) ^ 0xdeadbeefu;
        };
    } else if (defect == "revision") {
        view.revisionOf = [](const McuHeader &) { return 0u; };
    } else if (defect == "arch-write") {
        // The engine "installs" a uop writing an architectural GPR.
        view.installedOf = [](const UopVec &uops) {
            UopVec broken = uops;
            if (!broken.empty())
                broken.front().dst = intReg(Gpr::Rax);
            return broken;
        };
    } else if (defect == "table") {
        // Loads bind to a port-less class in the patched-table audit.
        auto real_ports = view.tables.portCountOf;
        view.tables.portCountOf = [real_ports](FuClass fu) {
            return fu == FuClass::MemLoad ? 0u : real_ports(fu);
        };
    } else if (defect == "channel") {
        // The patched translator clobbers decoy coverage: every
        // closed verdict that depended on decoys must regress.
        view.decoyCoverageOf = [](const AddrRange &) {
            return AddrRange();
        };
    }
    return view;
}

/**
 * Victim context the MCU channel non-regression check scores against:
 * the aes target's canonical workload, lint options, and Fig. 7a
 * defense — the same configuration the --channels pass proves closed.
 */
struct McuLintContext
{
    AesWorkload workload;
    Program program;
    McuChannelContext channel;

    McuLintContext()
        : workload(AesWorkload::build(
              {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab,
               0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c},
              /*decrypt=*/false)),
          program(workload.program)
    {
        channel.program = &program;
        channel.options.taintSources = {workload.keyRange};
        channel.options.expectLeak = true;
        channel.defense.enabled = true;
        channel.defense.decoyDRange = workload.tTableRange;
        channel.defense.taintSources = {workload.keyRange};
        channel.name = "aes";
    }
};

void
usage(const char *argv0, std::FILE *out)
{
    std::fprintf(out,
                 "usage: %s [--json FILE] [--channels] [--tables] "
                 "[--list] [TARGET...|all]\n"
                 "  --json FILE  write the findings report as JSON\n"
                 "  --channels   prove channel/leakage bounds per site\n"
                 "               and cross-check them against a dynamic\n"
                 "               attack measurement (rsa, aes)\n"
                 "  --inject-dynamic-defect\n"
                 "               inflate the dynamic measurement so the\n"
                 "               cross-check must fail (CI self-test)\n"
                 "  --tiers      prove compiled superblock streams\n"
                 "               equivalent to the translator semantics\n"
                 "               (native, CSD, and devectorizing\n"
                 "               configurations per target)\n"
                 "  --inject-tier-defect KIND\n"
                 "               splice a defect (handler|energy|guard)\n"
                 "               into the prover's SuperblockView so the\n"
                 "               matching tier.* check must fail\n"
                 "  --mcu        prove the shipped microcode-update\n"
                 "               defense blobs admissible: integrity,\n"
                 "               architectural containment, patched-\n"
                 "               table invariants, and channel non-\n"
                 "               regression against the aes context\n"
                 "  --mcu-blob FILE\n"
                 "               also prove a text-format blob from\n"
                 "               FILE (see csd::mcuBlobToText)\n"
                 "  --inject-mcu-defect KIND\n"
                 "               splice a defect (checksum|revision|\n"
                 "               arch-write|table|channel) into the\n"
                 "               prover's McuBlobView so the matching\n"
                 "               mcu.* check must fail\n"
                 "  --tables     also audit translations + uop tables\n"
                 "  --list       print the known targets and exit\n"
                 "Default: lint every target and audit the tables.\n"
                 "Exit status: 0 clean, 1 findings, 2 usage/internal "
                 "error.\n",
                 argv0);
}

} // namespace
} // namespace csd

int
main(int argc, char **argv)
{
    using namespace csd;

    std::string jsonPath;
    bool tablesOnly = false;
    bool listOnly = false;
    bool channels = false;
    bool tiers = false;
    bool mcu = false;
    bool injectDefect = false;
    std::string tierDefect;
    std::string mcuDefect;
    std::string mcuBlobPath;
    std::vector<std::string> wanted;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (arg == "--tables") {
            tablesOnly = true;
        } else if (arg == "--channels") {
            channels = true;
        } else if (arg == "--tiers") {
            tiers = true;
        } else if (arg == "--inject-tier-defect" && i + 1 < argc) {
            tierDefect = argv[++i];
            if (tierDefect != "handler" && tierDefect != "energy" &&
                tierDefect != "guard") {
                std::fprintf(stderr, "csd-lint: unknown tier defect "
                             "'%s' (handler|energy|guard)\n",
                             tierDefect.c_str());
                return 2;
            }
        } else if (arg == "--mcu") {
            mcu = true;
        } else if (arg == "--mcu-blob" && i + 1 < argc) {
            mcu = true;
            mcuBlobPath = argv[++i];
        } else if (arg == "--inject-mcu-defect" && i + 1 < argc) {
            mcuDefect = argv[++i];
            if (mcuDefect != "checksum" && mcuDefect != "revision" &&
                mcuDefect != "arch-write" && mcuDefect != "table" &&
                mcuDefect != "channel") {
                std::fprintf(stderr,
                             "csd-lint: unknown mcu defect '%s' "
                             "(checksum|revision|arch-write|table|"
                             "channel)\n",
                             mcuDefect.c_str());
                return 2;
            }
        } else if (arg == "--inject-dynamic-defect") {
            injectDefect = true;
        } else if (arg == "--list") {
            listOnly = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], stdout);
            return 0;
        } else if (arg == "all") {
            wanted.clear();
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0], stderr);
            return 2;
        } else {
            wanted.push_back(arg);
        }
    }

    const std::vector<LintTarget> all = targets();
    if (listOnly) {
        for (const LintTarget &target : all)
            std::printf("%s\n", target.name.c_str());
        return 0;
    }

    // Reject unknown target names up front (usage error, not "clean").
    for (const std::string &name : wanted) {
        const bool known =
            std::any_of(all.begin(), all.end(),
                        [&](const LintTarget &t) { return t.name == name; });
        if (!known) {
            std::fprintf(stderr, "csd-lint: unknown target '%s' "
                         "(--list shows the known ones)\n", name.c_str());
            return 2;
        }
    }

    VerifyReport combined;
    std::size_t confirmedLeaks = 0;
    std::string channelsJson;
    std::string measuredJson;
    std::string tiersJson;
    std::string mcuJson;

    if (!tablesOnly) {
        for (const LintTarget &target : all) {
            if (!wanted.empty() &&
                std::find(wanted.begin(), wanted.end(), target.name) ==
                    wanted.end())
                continue;

            VerifyOptions options;
            DefenseModel defense;
            ProveOptions prove;
            const Program program = target.build(options, defense, prove);
            VerifyReport report = verifyProgram(program, options);

            if (options.expectLeak) {
                const std::size_t hits =
                    resolveExpectedLeaks(report, options, target.name);
                if (hits > 0) {
                    confirmedLeaks += hits;
                    std::printf("%-14s %zu secret-dependent site(s) "
                                "confirmed by the leak lint\n",
                                target.name.c_str(), hits);
                }
            }

            if (report.empty()) {
                std::printf("%-14s clean (%zu instructions)\n",
                            target.name.c_str(), program.size());
            } else {
                std::printf("%s", report.text().c_str());
            }
            combined.merge(std::move(report));

            if (channels && options.expectLeak) {
                const LeakProof proof =
                    proveLeaks(program, options, defense, prove);
                std::printf("%s", proof.text().c_str());
                if (!proof.allClosed()) {
                    Finding finding;
                    finding.checkId = "leak.unclosed-channel";
                    finding.severity = Severity::Error;
                    finding.message =
                        target.name + ": " +
                        std::to_string(proof.openSites) + " open / " +
                        std::to_string(proof.narrowedSites) +
                        " narrowed site(s) under the canonical defense";
                    combined.add(std::move(finding));
                }
                channelsJson += (channelsJson.empty() ? "" : ", ") +
                                proof.json(target.name);

                if (auto *measure = measureFor(target.name)) {
                    ChannelMeasureOptions mopts;
                    if (injectDefect)
                        mopts.injectBits = 0.5;
                    const ChannelMeasurement measurement = measure(mopts);
                    for (const MeasuredChannel &mc :
                         measurement.crossCheck) {
                        std::printf("%-14s measured %s \"%s\" %s: %.4f "
                                    "bit(s)/obs over %llu probe(s)\n",
                                    target.name.c_str(),
                                    channelName(mc.channel),
                                    mc.site.c_str(),
                                    mc.defended ? "defended"
                                                : "undefended",
                                    mc.bitsPerObservation,
                                    static_cast<unsigned long long>(
                                        mc.observations));
                    }
                    std::vector<Finding> disagreements =
                        crossCheckChannels(target.name, proof,
                                           measurement.crossCheck);
                    if (disagreements.empty()) {
                        std::printf("%-14s dynamic measurement agrees "
                                    "with the static proof\n",
                                    target.name.c_str());
                    }
                    for (Finding &f : disagreements)
                        combined.add(std::move(f));
                    measuredJson +=
                        (measuredJson.empty() ? "" : ", ") +
                        measurementJson(measurement);
                }
            }

            if (tiers) {
                const SuperblockView view = tierView(tierDefect);
                const auto sweep = [&](const char *config,
                                       Translator &translator) {
                    VerifyReport tierReport;
                    const TierAudit audit = auditProgramTiers(
                        program, translator, tierReport, view);
                    std::printf("%-14s tiers[%s]: %zu block(s), %zu "
                                "macro(s), %zu uop(s) proved over %zu "
                                "head(s)\n",
                                target.name.c_str(), config,
                                audit.blocks, audit.macros, audit.uops,
                                audit.heads);
                    if (!tierReport.empty())
                        std::printf("%s", tierReport.text().c_str());
                    combined.merge(std::move(tierReport));
                    tiersJson += (tiersJson.empty() ? "" : ", ") +
                                 tierAuditJson(target.name, config,
                                               audit);
                };

                // The same translator configurations the simulator
                // runs the tier under: the static native translation,
                // the CSD with the target's canonical defense armed,
                // and the CSD devectorizing (ctxDevect stable flows).
                NativeTranslator native;
                sweep("native", native);

                MsrFile msrs;
                TaintTracker taint;
                ContextSensitiveDecoder csd(msrs, &taint);
                for (const AddrRange &src : defense.taintSources)
                    taint.addTaintSource(src);
                if (defense.enabled) {
                    if (defense.decoyIRange.valid())
                        msrs.setDecoyIRange(0, defense.decoyIRange);
                    if (defense.decoyDRange.valid())
                        msrs.setDecoyDRange(0, defense.decoyDRange);
                    msrs.setControl(ctrlStealthEnable | ctrlDiftTrigger);
                }
                sweep("csd", csd);

                MsrFile devectMsrs;
                ContextSensitiveDecoder devectCsd(devectMsrs, nullptr);
                devectCsd.setDevectorize(true);
                sweep("csd-devect", devectCsd);
            }
        }
    }

    // The table audit runs for `all`/default invocations and --tables.
    if (tablesOnly || wanted.empty()) {
        VerifyReport tables = verifyTranslation();
        if (tables.empty()) {
            std::printf("%-14s all %u macro-opcodes consistent across "
                        "decode paths; tables covered\n",
                        "translation",
                        static_cast<unsigned>(MacroOpcode::NumOpcodes));
        } else {
            std::printf("%s", tables.text().c_str());
        }
        combined.merge(std::move(tables));
    }

    // The MCU admission sweep runs once per invocation: every shipped
    // defense blob (plus any --mcu-blob file) must be admitted by the
    // static prover under the aes victim context.
    if (mcu) {
        const McuLintContext ctx;
        McuProveOptions mopts;
        mopts.view = mcuView(mcuDefect);
        mopts.channel = &ctx.channel;

        std::vector<std::pair<std::string, McuBlob>> blobs;
        blobs.emplace_back("load-instrument",
                           mcuLoadInstrumentationPreset());
        blobs.emplace_back(
            "ct-sweep-aes",
            mcuConstantTimeSweepPreset(ctx.workload.tTableRange));
        if (!mcuBlobPath.empty()) {
            std::ifstream in(mcuBlobPath);
            if (!in) {
                std::fprintf(stderr, "csd-lint: cannot read %s\n",
                             mcuBlobPath.c_str());
                return 2;
            }
            std::stringstream text;
            text << in.rdbuf();
            McuBlob fromFile;
            std::string parseError;
            if (!mcuBlobFromText(text.str(), fromFile, &parseError)) {
                std::fprintf(stderr, "csd-lint: %s: %s\n",
                             mcuBlobPath.c_str(), parseError.c_str());
                return 2;
            }
            blobs.emplace_back(mcuBlobPath, std::move(fromFile));
        }

        for (const auto &[name, blob] : blobs) {
            VerifyReport mcuReport;
            const McuAudit audit =
                proveMcuAdmission(blob, mcuReport, mopts);
            for (const McuEntryAudit &ea : audit.entries) {
                std::printf("%-14s mcu[%s]: %s/%zu native op(s) -> %zu "
                            "uop(s), %+.2f nJ/exec, %zu swept line(s)\n",
                            name.c_str(), mnemonic(ea.target).c_str(),
                            ea.placement == McuPlacement::Replace
                                ? "replace"
                                : (ea.placement == McuPlacement::Prepend
                                       ? "prepend"
                                       : "append"),
                            ea.nativeOps, ea.installedUops,
                            ea.energyDeltaNj, ea.sweptLines);
            }
            if (audit.channelChecked) {
                std::printf("%-14s mcu channel: baseline %zu closed/"
                            "%zu narrowed/%zu open -> patched %zu "
                            "closed/%zu narrowed/%zu open\n",
                            name.c_str(), audit.baselineClosed,
                            audit.baselineNarrowed, audit.baselineOpen,
                            audit.patchedClosed, audit.patchedNarrowed,
                            audit.patchedOpen);
            }
            if (mcuReport.empty()) {
                std::printf("%-14s mcu admission proof clean\n",
                            name.c_str());
            } else {
                std::printf("%s", mcuReport.text().c_str());
            }
            combined.merge(std::move(mcuReport));
            mcuJson += (mcuJson.empty() ? "" : ", ") + audit.json(name);
        }
    }

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "csd-lint: cannot write %s\n",
                         jsonPath.c_str());
            return 2;
        }
        std::string extra;
        if (channels)
            extra = "\"channels\": [" + channelsJson + "], "
                    "\"measured\": [" + measuredJson + "]";
        if (tiers)
            extra += (extra.empty() ? std::string() : std::string(", ")) +
                     "\"tiers\": [" + tiersJson + "]";
        if (mcu)
            extra += (extra.empty() ? std::string() : std::string(", ")) +
                     "\"mcu\": [" + mcuJson + "]";
        out << combined.json(extra) << "\n";
        if (!out) {
            std::fprintf(stderr, "csd-lint: write to %s failed\n",
                         jsonPath.c_str());
            return 2;
        }
    }

    std::printf("csd-lint: %zu error(s), %zu warning(s), %zu confirmed "
                "leak site(s)\n",
                combined.errorCount(), combined.warningCount(),
                confirmedLeaks);
    return combined.hasErrors() ? 1 : 0;
}

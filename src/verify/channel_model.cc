#include "verify/channel_model.hh"

#include <algorithm>
#include <cmath>

#include "memory/cache.hh"

namespace csd
{

const char *
channelName(Channel channel)
{
    switch (channel) {
      case Channel::L1IFetch:  return "l1i-fetch";
      case Channel::L1DAccess: return "l1d-access";
    }
    return "unknown";
}

ChannelGeometry
ChannelGeometry::fromSimulator(const MemHierarchyParams &mem,
                               const FrontEndParams &fe)
{
    ChannelGeometry geometry;
    geometry.blockBytes = cacheBlockSize;
    // Instantiate the real cache model so the set counts (and their
    // divisibility/power-of-two invariants) are the simulator's own.
    const Cache l1i(mem.l1i);
    const Cache l1d(mem.l1d);
    geometry.l1iSets = l1i.numSets();
    geometry.l1iAssoc = l1i.assoc();
    geometry.l1dSets = l1d.numSets();
    geometry.l1dAssoc = l1d.assoc();
    geometry.uopCacheSets = fe.uopCacheSets;
    geometry.uopCacheWindowBytes = fe.uopCacheWindowBytes;
    return geometry;
}

unsigned
ChannelGeometry::setIndexOf(Channel channel, Addr addr) const
{
    // Same computation as Cache::setIndex (block number modulo the
    // power-of-two set count).
    const unsigned sets = numSets(channel);
    return static_cast<unsigned>(blockNumber(addr)) & (sets - 1);
}

unsigned
ChannelGeometry::uopSetOf(Addr pc) const
{
    // Same computation as UopCache::setIndex on windowOf(pc).
    if (uopCacheSets == 0 || uopCacheWindowBytes == 0)
        return 0;
    return static_cast<unsigned>(pc / uopCacheWindowBytes) &
           (uopCacheSets - 1);
}

double
ChannelFootprint::lineBits() const
{
    return lines.size() <= 1 ? 0.0
                             : std::log2(static_cast<double>(lines.size()));
}

double
ChannelFootprint::setBits() const
{
    return sets.size() <= 1 ? 0.0
                            : std::log2(static_cast<double>(sets.size()));
}

namespace
{

void
finalize(ChannelFootprint &footprint, const ChannelGeometry &geometry)
{
    std::sort(footprint.lines.begin(), footprint.lines.end());
    footprint.lines.erase(
        std::unique(footprint.lines.begin(), footprint.lines.end()),
        footprint.lines.end());

    footprint.sets.clear();
    footprint.uopSets.clear();
    for (Addr line : footprint.lines) {
        footprint.sets.push_back(
            geometry.setIndexOf(footprint.channel, line));
        if (footprint.channel == Channel::L1IFetch)
            footprint.uopSets.push_back(geometry.uopSetOf(line));
    }
    std::sort(footprint.sets.begin(), footprint.sets.end());
    footprint.sets.erase(
        std::unique(footprint.sets.begin(), footprint.sets.end()),
        footprint.sets.end());
    std::sort(footprint.uopSets.begin(), footprint.uopSets.end());
    footprint.uopSets.erase(
        std::unique(footprint.uopSets.begin(), footprint.uopSets.end()),
        footprint.uopSets.end());
}

} // namespace

ChannelFootprint
footprintOfRange(Channel channel, const AddrRange &range,
                 const ChannelGeometry &geometry)
{
    ChannelFootprint footprint;
    footprint.channel = channel;
    if (range.valid()) {
        for (Addr line = blockAlign(range.start); line < range.end;
             line += geometry.blockBytes)
            footprint.lines.push_back(line);
    }
    finalize(footprint, geometry);
    return footprint;
}

ChannelFootprint
footprintOfLines(Channel channel, const std::vector<Addr> &addrs,
                 const ChannelGeometry &geometry)
{
    ChannelFootprint footprint;
    footprint.channel = channel;
    footprint.lines.reserve(addrs.size());
    for (Addr addr : addrs)
        footprint.lines.push_back(blockAlign(addr));
    finalize(footprint, geometry);
    return footprint;
}

} // namespace csd

/**
 * @file
 * Static side-channel prover (see DESIGN.md "Verification layer").
 *
 * For every leak site the dataflow lint confirms, the prover
 *
 *  1. resolves the secret-dependent footprint into concrete hardware
 *     coordinates (verify/channel_model.hh): for a tainted-index
 *     access, the candidate lines of the table the access indexes;
 *     for a tainted branch, the I-cache lines fetched on exactly one
 *     side of the branch (the cone-exclusive footprint);
 *
 *  2. bounds the leakage: log2(#distinguishable outcomes) bits per
 *     observation — candidate lines for FLUSH+RELOAD, candidate sets
 *     for PRIME+PROBE — summed over the key loop;
 *
 *  3. re-runs the analysis against the defended program form (decoy
 *     injection covering the configured ranges, taint-gated decode)
 *     and emits a verdict per site: closed (the decoy covers every
 *     candidate coordinate, so all observations are identical),
 *     narrowed (some candidates remain distinguishable, residual
 *     bits < the undefended bound), or open.
 *
 * The result is the static half of the paper's Fig. 7 claims: the
 * dynamic PRIME+PROBE / FLUSH+RELOAD harnesses must observe a subset
 * of the sets named here, and a `closed` verdict must coincide with
 * the dynamic attacker recovering nothing.
 */

#ifndef CSD_VERIFY_LEAK_PROVER_HH
#define CSD_VERIFY_LEAK_PROVER_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/addr_range.hh"
#include "verify/channel_model.hh"
#include "verify/options.hh"
#include "verify/program_verifier.hh"

namespace csd
{

/** Per-site defense verdict. */
enum class LeakVerdict : std::uint8_t
{
    Open,      //!< the defense does not reduce the bound
    Narrowed,  //!< residual bits > 0 but below the undefended bound
    Closed,    //!< every candidate coordinate is covered: 0 bits
};

/** Printable verdict ("open"/"narrowed"/"closed"). */
const char *verdictName(LeakVerdict verdict);

/**
 * Static mirror of the dynamic sec::DefenseConfig: what stealth mode
 * is programmed to cover. Kept dependency-free of sec/ so the verify
 * layer stays below the simulator; harnesses copy the fields over.
 */
struct DefenseModel
{
    bool enabled = false;
    AddrRange decoyIRange;  //!< decoy fetch coverage (code)
    AddrRange decoyDRange;  //!< decoy load coverage (data)
    /** DIFT sources the taint-gated decode triggers on. */
    std::vector<AddrRange> taintSources;
};

/** Prover knobs. */
struct ProveOptions
{
    /**
     * Times each static leak site executes per victim run (the key
     * loop trip count: exponent bits for RSA; 1 for the unrolled
     * AES/Blowfish ciphers). Scales the per-run total bound.
     */
    std::uint64_t keyLoopIterations = 1;

    /** Hardware geometry; default = the simulator's Table I config. */
    ChannelGeometry geometry = ChannelGeometry::fromSimulator();
};

/** The proof artifact for one leak site. */
struct SiteProof
{
    LeakSite site;
    ChannelFootprint footprint;      //!< undefended candidate coords

    double bitsPerObservation = 0;   //!< log2(outcomes), line granularity
    double setBitsPerObservation = 0;//!< log2(outcomes), set granularity
    std::uint64_t observations = 1;  //!< per victim run
    double totalBits = 0;            //!< bitsPerObservation * observations

    LeakVerdict verdict = LeakVerdict::Open;
    double residualBitsPerObservation = 0;  //!< under the defense
    std::size_t residualLines = 0;   //!< candidates the decoy misses
    std::string note;
};

/** All site proofs for one victim program. */
struct LeakProof
{
    std::vector<SiteProof> sites;    //!< sorted by site pc
    double totalBits = 0;            //!< undefended bound, whole run
    double residualTotalBits = 0;    //!< defended bound, whole run
    std::size_t closedSites = 0;
    std::size_t narrowedSites = 0;
    std::size_t openSites = 0;

    bool allClosed() const
    {
        return openSites == 0 && narrowedSites == 0;
    }

    /** Aligned text rendering, one site per line plus a summary. */
    std::string text() const;

    /** JSON object for the csd-lint --channels report. */
    std::string json(const std::string &target) const;
};

/**
 * Run the dataflow leak lint over @p prog and prove a bound for every
 * site under @p defense. @p options must carry the taint sources (the
 * same ones the lint runs with).
 */
LeakProof proveLeaks(const Program &prog, const VerifyOptions &options,
                     const DefenseModel &defense,
                     const ProveOptions &prove = {});

/**
 * Re-judge every site of @p baseline without re-running the dataflow:
 * footprints and undefended bounds carry over verbatim; verdicts,
 * residuals, and the summary counters are recomputed under @p defense
 * with @p extra_covered_for naming additional always-hot lines per
 * site (empty function = none). The extra lines model coverage the
 * decoy MSRs don't know about — e.g. a microcode update that appends a
 * constant-time sweep to the site's flow — and count as covered even
 * when stealth-mode decoys are off, since they fire unconditionally.
 * The MCU admission prover uses this to score channel non-regression
 * per update entry (verify/mcu_prover.hh).
 */
LeakProof rejudgeLeaks(
    const LeakProof &baseline, const VerifyOptions &options,
    const DefenseModel &defense, const ProveOptions &prove,
    const std::function<std::set<Addr>(const SiteProof &)>
        &extra_covered_for = {});

} // namespace csd

#endif // CSD_VERIFY_LEAK_PROVER_HH

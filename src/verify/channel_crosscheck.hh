/**
 * @file
 * Static-vs-dynamic leakage cross-check (`csd-lint --channels`).
 *
 * The static prover (verify/leak_prover.hh) upper-bounds the leakage
 * of each site; the observation ledger (sec/observation_ledger.hh)
 * measures what a real attack observed, as empirical bits per
 * observation. Whenever both exist for a channel, three invariants
 * must hold:
 *
 *  1. measured bits <= static bound (undefended): a dynamic leak above
 *     the proof means the model under-counts the channel;
 *  2. a "closed" verdict implies ~0 measured bits under the defense:
 *     leakage through a closed site means the proof is wrong or the
 *     defense is not actually deployed as modeled;
 *  3. a measured channel must exist in the proof at all: dynamic
 *     leakage with no static site is an unmodeled channel.
 *
 * Violations are ordinary Findings, so they ride the same baseline /
 * exit-code machinery as every other lint. This header stays
 * dependency-free of sec/ (the verify layer sits below the simulator):
 * harnesses convert ledger measurements into MeasuredChannel records.
 */

#ifndef CSD_VERIFY_CHANNEL_CROSSCHECK_HH
#define CSD_VERIFY_CHANNEL_CROSSCHECK_HH

#include <string>
#include <vector>

#include "isa/finding.hh"
#include "verify/leak_prover.hh"

namespace csd
{

/** One dynamically measured channel (from an ObservationLedger). */
struct MeasuredChannel
{
    std::string site;     //!< ledger site label, e.g. "t0", "multiply"
    Channel channel = Channel::L1DAccess;
    bool defended = false;
    bool setGranular = false;  //!< PRIME+PROBE (sets) vs F+R (lines)
    double bitsPerObservation = 0.0;  //!< empirical mutual information
    std::uint64_t observations = 0;
};

/** Cross-check knobs. */
struct CrossCheckOptions
{
    /**
     * Slack added to every static bound before comparing: the MI
     * estimator's small-sample bias is positive (~1/(2N ln 2) bits per
     * d.o.f.), so a few-hundred-sample measurement of an exactly-tight
     * channel can read a few millibits above the bound.
     */
    double toleranceBits = 0.05;
};

/**
 * Compare @p measured against @p proof for @p target. Returns one
 * Error finding per violated invariant:
 *   channel.dynamic-exceeds-static  (undefended measurement > bound)
 *   channel.leak-through-closed     (defended measurement through a
 *                                    channel whose sites all closed)
 *   channel.unmodeled-dynamic-leak  (leaky measurement, no static site)
 */
std::vector<Finding> crossCheckChannels(
    const std::string &target, const LeakProof &proof,
    const std::vector<MeasuredChannel> &measured,
    const CrossCheckOptions &options = {});

} // namespace csd

#endif // CSD_VERIFY_CHANNEL_CROSSCHECK_HH

#include "verify/channel_crosscheck.hh"

#include <sstream>

namespace csd
{

namespace
{

/** Best (max) static per-observation bound on @p channel. */
struct ChannelBound
{
    bool hasSites = false;
    bool allClosed = true;   //!< meaningless unless hasSites
    double undefended = 0.0;
    double residual = 0.0;   //!< defended bound (0 when all closed)
    Addr pc = invalidAddr;   //!< a representative site for provenance
    std::string symbol;
};

ChannelBound
boundFor(const LeakProof &proof, Channel channel, bool set_granular)
{
    ChannelBound bound;
    for (const SiteProof &sp : proof.sites) {
        if (sp.footprint.channel != channel)
            continue;
        const double site_bits = set_granular ? sp.setBitsPerObservation
                                              : sp.bitsPerObservation;
        if (!bound.hasSites || site_bits > bound.undefended) {
            bound.undefended = site_bits;
            bound.pc = sp.site.pc;
            bound.symbol = sp.site.symbol;
        }
        if (sp.verdict != LeakVerdict::Closed) {
            bound.allClosed = false;
            if (sp.residualBitsPerObservation > bound.residual)
                bound.residual = sp.residualBitsPerObservation;
        }
        bound.hasSites = true;
    }
    return bound;
}

std::string
formatBits(double bits)
{
    std::ostringstream os;
    os.precision(4);
    os << bits;
    return os.str();
}

} // namespace

std::vector<Finding>
crossCheckChannels(const std::string &target, const LeakProof &proof,
                   const std::vector<MeasuredChannel> &measured,
                   const CrossCheckOptions &options)
{
    std::vector<Finding> findings;
    for (const MeasuredChannel &m : measured) {
        const ChannelBound bound =
            boundFor(proof, m.channel, m.setGranular);
        const std::string where = std::string(channelName(m.channel)) +
                                  " site \"" + m.site + "\" (" + target +
                                  ", " +
                                  std::to_string(m.observations) +
                                  " obs)";

        if (!bound.hasSites) {
            if (m.bitsPerObservation > options.toleranceBits) {
                Finding f;
                f.checkId = "channel.unmodeled-dynamic-leak";
                f.symbol = m.site;
                f.message = "measured " +
                            formatBits(m.bitsPerObservation) +
                            " bits/obs on " + where +
                            " but the static proof has no site on "
                            "this channel";
                findings.push_back(std::move(f));
            }
            continue;
        }

        if (!m.defended) {
            if (m.bitsPerObservation >
                bound.undefended + options.toleranceBits) {
                Finding f;
                f.checkId = "channel.dynamic-exceeds-static";
                f.pc = bound.pc;
                f.symbol = m.site;
                f.message = "measured " +
                            formatBits(m.bitsPerObservation) +
                            " bits/obs on " + where +
                            " exceeds the static bound of " +
                            formatBits(bound.undefended) + " bits/obs";
                findings.push_back(std::move(f));
            }
            continue;
        }

        if (bound.allClosed) {
            if (m.bitsPerObservation > options.toleranceBits) {
                Finding f;
                f.checkId = "channel.leak-through-closed";
                f.pc = bound.pc;
                f.symbol = m.site;
                f.message = "measured " +
                            formatBits(m.bitsPerObservation) +
                            " bits/obs on defended " + where +
                            " but every static site on this channel "
                            "is proved closed (0 bits)";
                findings.push_back(std::move(f));
            }
        } else if (m.bitsPerObservation >
                   bound.residual + options.toleranceBits) {
            Finding f;
            f.checkId = "channel.dynamic-exceeds-static";
            f.pc = bound.pc;
            f.symbol = m.site;
            f.message = "measured " + formatBits(m.bitsPerObservation) +
                        " bits/obs on defended " + where +
                        " exceeds the residual static bound of " +
                        formatBits(bound.residual) + " bits/obs";
            findings.push_back(std::move(f));
        }
    }
    return findings;
}

} // namespace csd

#include "verify/leak_prover.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>
#include <sstream>

namespace csd
{

namespace
{

/**
 * Interprocedural forward cone: blocks reachable from @p start
 * without passing through @p cut (the branch block). Call blocks
 * descend into the callee *and* resume at the post-call block; Ret
 * blocks stop (following the CFG's ret edges here would leak blocks
 * of unrelated callers into the cone, e.g. `square`'s tail into the
 * multiply-side cone through the shared `reduce`).
 */
std::vector<bool>
coneBlocks(const Cfg &cfg, std::size_t start, std::size_t cut)
{
    const auto &code = cfg.program().code();
    std::vector<bool> in(cfg.blocks().size(), false);
    if (start == Cfg::npos || start == cut)
        return in;
    std::deque<std::size_t> work{start};
    in[start] = true;
    while (!work.empty()) {
        const std::size_t b = work.front();
        work.pop_front();
        const BasicBlock &blk = cfg.blocks()[b];
        const MacroOp &exit = code[blk.last];

        auto push = [&](std::size_t next) {
            if (next == Cfg::npos || next == cut || in[next])
                return;
            in[next] = true;
            work.push_back(next);
        };

        if (exit.opcode == MacroOpcode::Ret ||
            exit.opcode == MacroOpcode::Halt ||
            exit.opcode == MacroOpcode::JmpInd)
            continue;
        if (isCall(exit.opcode)) {
            const MacroOp *callee = cfg.program().at(exit.target);
            if (callee)
                push(cfg.blockOf(static_cast<std::size_t>(
                    callee - code.data())));
            if (blk.last + 1 < code.size())
                push(cfg.blockOf(blk.last + 1));
            continue;
        }
        for (std::size_t succ : blk.succs)
            push(succ);
    }
    return in;
}

/** Append the cache lines spanned by @p blk's instructions. */
void
addBlockLines(const Cfg &cfg, const BasicBlock &blk, unsigned block_bytes,
              std::vector<Addr> &lines)
{
    const auto &code = cfg.program().code();
    for (std::size_t i = blk.first; i <= blk.last; ++i) {
        const Addr first = blockAlign(code[i].pc);
        const Addr last = blockAlign(code[i].nextPc() - 1);
        for (Addr line = first; line <= last; line += block_bytes)
            lines.push_back(line);
    }
}

/**
 * I-cache lines fetched on exactly one side of the branch at
 * @p site, minus lines shared with code fetched on both sides (a
 * shared line is warm either way and carries no signal).
 */
std::vector<Addr>
branchExclusiveLines(const Cfg &cfg, const LeakSite &site,
                     unsigned block_bytes)
{
    const auto &code = cfg.program().code();
    const MacroOp &op = code[site.instrIndex];
    if (op.opcode != MacroOpcode::Jcc)
        return {};

    const std::size_t branch_blk = cfg.blockOf(site.instrIndex);
    std::size_t target_blk = Cfg::npos;
    std::size_t fall_blk = Cfg::npos;
    if (const MacroOp *hit = cfg.program().at(op.target))
        target_blk = cfg.blockOf(static_cast<std::size_t>(
            hit - code.data()));
    if (op.cond != Cond::Always && site.instrIndex + 1 < code.size())
        fall_blk = cfg.blockOf(site.instrIndex + 1);
    if (target_blk == Cfg::npos || fall_blk == Cfg::npos)
        return {};

    const std::vector<bool> taken =
        coneBlocks(cfg, target_blk, branch_blk);
    const std::vector<bool> fall = coneBlocks(cfg, fall_blk, branch_blk);

    std::vector<Addr> exclusive;
    std::vector<Addr> shared;
    for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
        const bool in_taken = taken[b];
        const bool in_fall = fall[b];
        if (in_taken != in_fall) {
            addBlockLines(cfg, cfg.blocks()[b], block_bytes, exclusive);
        } else if (cfg.blocks()[b].reachable || in_taken) {
            // Fetched on both sides (or unconditionally): its lines
            // carry no signal even if an exclusive block shares them.
            addBlockLines(cfg, cfg.blocks()[b], block_bytes, shared);
        }
    }
    std::sort(shared.begin(), shared.end());
    shared.erase(std::unique(shared.begin(), shared.end()), shared.end());
    std::sort(exclusive.begin(), exclusive.end());
    exclusive.erase(std::unique(exclusive.begin(), exclusive.end()),
                    exclusive.end());

    std::vector<Addr> signal;
    std::set_difference(exclusive.begin(), exclusive.end(),
                        shared.begin(), shared.end(),
                        std::back_inserter(signal));
    return signal;
}

/** Declared region containing @p addr (data chunk, extra, or taint). */
AddrRange
regionContaining(const Program &prog, const VerifyOptions &options,
                 Addr addr)
{
    for (const auto &[base, bytes] : prog.data()) {
        const AddrRange range(base, base + bytes.size());
        if (range.contains(addr))
            return range;
    }
    for (const AddrRange &range : options.extraRegions)
        if (range.contains(addr))
            return range;
    for (const AddrRange &range : options.taintSources)
        if (range.contains(addr))
            return range;
    return AddrRange();
}

/** Block-aligned line set of a (possibly invalid) range. */
std::set<Addr>
rangeLines(const AddrRange &range, unsigned block_bytes)
{
    std::set<Addr> lines;
    if (range.valid())
        for (Addr line = blockAlign(range.start); line < range.end;
             line += block_bytes)
            lines.insert(line);
    return lines;
}

/** True iff every analysis taint source is visible to the defense's
 *  DIFT configuration (taint-gated decode fires for it). */
bool
taintGateCovers(const VerifyOptions &options, const DefenseModel &defense)
{
    for (const AddrRange &src : options.taintSources) {
        bool covered = false;
        for (const AddrRange &gate : defense.taintSources)
            covered |= gate.overlaps(src);
        if (!covered)
            return false;
    }
    return true;
}

/**
 * Judge one site under the configured defense. @p extra_covered names
 * additional always-hot lines beyond the decoy ranges — e.g. lines an
 * admitted MCU custom translation sweeps on every execution of the
 * site's flow — that count as covered even when stealth-mode decoys
 * are disabled or taint-blind (the sweep fires unconditionally).
 */
void
judgeDefense(SiteProof &proof, const VerifyOptions &options,
             const DefenseModel &defense, const ProveOptions &prove,
             const std::set<Addr> &extra_covered)
{
    if (proof.bitsPerObservation == 0.0) {
        proof.verdict = LeakVerdict::Closed;
        proof.residualBitsPerObservation = 0.0;
        if (proof.note.empty())
            proof.note = "no distinguishable footprint";
        return;
    }
    if (!defense.enabled && extra_covered.empty()) {
        proof.verdict = LeakVerdict::Open;
        proof.residualBitsPerObservation = proof.bitsPerObservation;
        proof.residualLines = proof.footprint.lines.size();
        proof.note = "defense disabled";
        return;
    }
    const bool decoys_active =
        defense.enabled && taintGateCovers(options, defense);
    if (!decoys_active && defense.enabled && extra_covered.empty()) {
        proof.verdict = LeakVerdict::Open;
        proof.residualBitsPerObservation = proof.bitsPerObservation;
        proof.residualLines = proof.footprint.lines.size();
        proof.note = "taint-gated decode blind to a secret source";
        return;
    }

    const bool instr_side =
        proof.footprint.channel == Channel::L1IFetch;
    std::set<Addr> covered = extra_covered;
    if (decoys_active) {
        const AddrRange &decoy =
            instr_side ? defense.decoyIRange : defense.decoyDRange;
        const std::set<Addr> decoy_lines =
            rangeLines(decoy, prove.geometry.blockBytes);
        covered.insert(decoy_lines.begin(), decoy_lines.end());
    }

    if (proof.footprint.lines.empty()) {
        // Unresolved base: the footprint could be anywhere, so no
        // finite decoy range provably covers it.
        proof.verdict = LeakVerdict::Open;
        proof.residualBitsPerObservation = proof.bitsPerObservation;
        proof.note = "unresolved footprint; decoy coverage unprovable";
        return;
    }

    std::size_t residual = 0;
    for (Addr line : proof.footprint.lines)
        residual += covered.count(line) == 0;
    proof.residualLines = residual;

    if (residual == 0) {
        proof.verdict = LeakVerdict::Closed;
        proof.residualBitsPerObservation = 0.0;
        proof.note = "decoy covers every candidate line";
        return;
    }

    if (proof.site.kind == LeakKind::TaintedIndex &&
        residual < proof.footprint.lines.size()) {
        // Some candidates collapse into the decoy's always-hot set;
        // the uncovered ones stay distinguishable (+1 for "one of the
        // covered lines" as a single merged outcome).
        proof.verdict = LeakVerdict::Narrowed;
        proof.residualBitsPerObservation =
            std::log2(static_cast<double>(residual) + 1.0);
        proof.note = "decoy misses " + std::to_string(residual) +
                     " candidate line(s)";
        return;
    }

    // A branch with any uncovered exclusive line still yields the
    // full taken/not-taken outcome; likewise a fully uncovered index.
    proof.verdict = LeakVerdict::Open;
    proof.residualBitsPerObservation = proof.bitsPerObservation;
    proof.note = "decoy misses " + std::to_string(residual) +
                 " candidate line(s)";
}

} // namespace

const char *
verdictName(LeakVerdict verdict)
{
    switch (verdict) {
      case LeakVerdict::Open:     return "open";
      case LeakVerdict::Narrowed: return "narrowed";
      case LeakVerdict::Closed:   return "closed";
    }
    return "unknown";
}

LeakProof
proveLeaks(const Program &prog, const VerifyOptions &options,
           const DefenseModel &defense, const ProveOptions &prove)
{
    LeakProof proof;

    // Re-run the dataflow fixpoint with the leak-site collector; the
    // findings themselves go to a scratch report (the caller already
    // has them from verifyProgram()).
    VerifyReport scratch;
    Cfg cfg = Cfg::build(prog, scratch);
    if (prog.code().empty())
        return proof;
    runPathWalk(cfg, options, scratch);
    std::vector<LeakSite> sites;
    runDataflow(cfg, options, scratch, &sites);

    std::sort(sites.begin(), sites.end(),
              [](const LeakSite &a, const LeakSite &b) {
                  return a.pc < b.pc;
              });

    const ChannelGeometry &geometry = prove.geometry;
    for (LeakSite &site : sites) {
        SiteProof sp;
        sp.observations = prove.keyLoopIterations;

        switch (site.kind) {
          case LeakKind::TaintedBranch: {
            sp.footprint = footprintOfLines(
                Channel::L1IFetch,
                branchExclusiveLines(cfg, site, geometry.blockBytes),
                geometry);
            // One binary outcome per observation when the two sides
            // have distinguishable fetch footprints.
            sp.bitsPerObservation =
                sp.footprint.lines.empty() ? 0.0 : 1.0;
            sp.setBitsPerObservation = sp.bitsPerObservation;
            break;
          }
          case LeakKind::TaintedIndirect: {
            // Target set unknown: bound by the whole code section.
            sp.footprint = footprintOfRange(Channel::L1IFetch,
                                            prog.codeRange(), geometry);
            sp.bitsPerObservation = sp.footprint.lineBits();
            sp.setBitsPerObservation = sp.footprint.setBits();
            break;
          }
          case LeakKind::TaintedIndex: {
            AddrRange extent;
            if (site.baseKnown) {
                const AddrRange region =
                    regionContaining(prog, options, site.baseAddr);
                if (region.valid())
                    extent = AddrRange(site.baseAddr, region.end);
            }
            sp.footprint =
                footprintOfRange(Channel::L1DAccess, extent, geometry);
            if (extent.valid()) {
                sp.bitsPerObservation = sp.footprint.lineBits();
                sp.setBitsPerObservation = sp.footprint.setBits();
            } else {
                // Unresolved table base: bound by the structure
                // itself (the attacker observes at most a set index).
                sp.bitsPerObservation = std::log2(static_cast<double>(
                    geometry.numSets(Channel::L1DAccess)));
                sp.setBitsPerObservation = sp.bitsPerObservation;
                sp.note = "unresolved base address";
            }
            break;
          }
        }

        sp.site = std::move(site);
        sp.totalBits = sp.bitsPerObservation *
                       static_cast<double>(sp.observations);
        judgeDefense(sp, options, defense, prove, {});

        proof.totalBits += sp.totalBits;
        proof.residualTotalBits += sp.residualBitsPerObservation *
                                   static_cast<double>(sp.observations);
        switch (sp.verdict) {
          case LeakVerdict::Open:     ++proof.openSites; break;
          case LeakVerdict::Narrowed: ++proof.narrowedSites; break;
          case LeakVerdict::Closed:   ++proof.closedSites; break;
        }
        proof.sites.push_back(std::move(sp));
    }
    return proof;
}

LeakProof
rejudgeLeaks(const LeakProof &baseline, const VerifyOptions &options,
             const DefenseModel &defense, const ProveOptions &prove,
             const std::function<std::set<Addr>(const SiteProof &)>
                 &extra_covered_for)
{
    LeakProof out;
    for (const SiteProof &site : baseline.sites) {
        SiteProof sp = site;
        sp.verdict = LeakVerdict::Open;
        sp.residualBitsPerObservation = 0.0;
        sp.residualLines = 0;
        sp.note.clear();
        judgeDefense(sp, options, defense, prove,
                     extra_covered_for ? extra_covered_for(site)
                                       : std::set<Addr>());
        out.totalBits += sp.totalBits;
        out.residualTotalBits += sp.residualBitsPerObservation *
                                 static_cast<double>(sp.observations);
        switch (sp.verdict) {
          case LeakVerdict::Open:     ++out.openSites; break;
          case LeakVerdict::Narrowed: ++out.narrowedSites; break;
          case LeakVerdict::Closed:   ++out.closedSites; break;
        }
        out.sites.push_back(std::move(sp));
    }
    return out;
}

std::string
LeakProof::text() const
{
    std::ostringstream os;
    for (const SiteProof &sp : sites) {
        os << "0x" << std::hex << sp.site.pc << std::dec;
        if (!sp.site.symbol.empty())
            os << " <" << sp.site.symbol << ">";
        os << ": " << leakKindName(sp.site.kind) << " via "
           << channelName(sp.footprint.channel) << ", "
           << sp.footprint.lines.size() << " line(s) in "
           << sp.footprint.sets.size() << " set(s), "
           << sp.bitsPerObservation << " bit(s)/obs x "
           << sp.observations << " = " << sp.totalBits
           << " bit(s); defended: " << verdictName(sp.verdict);
        if (sp.verdict == LeakVerdict::Narrowed)
            os << "(" << sp.residualBitsPerObservation << ")";
        if (!sp.note.empty())
            os << " [" << sp.note << "]";
        os << "\n";
    }
    os << sites.size() << " site(s), " << totalBits
       << " bit(s)/run undefended, " << residualTotalBits
       << " bit(s)/run defended (" << closedSites << " closed, "
       << narrowedSites << " narrowed, " << openSites << " open)\n";
    return os.str();
}

std::string
LeakProof::json(const std::string &target) const
{
    std::ostringstream os;
    os << "{\"target\": ";
    jsonEscape(os, target);
    os << ", \"sites\": [";
    bool first_site = true;
    for (const SiteProof &sp : sites) {
        os << (first_site ? "" : ", ") << "{\"pc\": " << sp.site.pc
           << ", \"symbol\": ";
        jsonEscape(os, sp.site.symbol);
        os << ", \"kind\": \"" << leakKindName(sp.site.kind)
           << "\", \"channel\": \"" << channelName(sp.footprint.channel)
           << "\", \"lines\": " << sp.footprint.lines.size()
           << ", \"sets\": [";
        for (std::size_t i = 0; i < sp.footprint.sets.size(); ++i)
            os << (i ? ", " : "") << sp.footprint.sets[i];
        os << "], \"uop_sets\": [";
        for (std::size_t i = 0; i < sp.footprint.uopSets.size(); ++i)
            os << (i ? ", " : "") << sp.footprint.uopSets[i];
        os << "], \"bits_per_observation\": " << sp.bitsPerObservation
           << ", \"set_bits_per_observation\": "
           << sp.setBitsPerObservation
           << ", \"observations\": " << sp.observations
           << ", \"total_bits\": " << sp.totalBits
           << ", \"verdict\": \"" << verdictName(sp.verdict)
           << "\", \"residual_bits_per_observation\": "
           << sp.residualBitsPerObservation
           << ", \"residual_lines\": " << sp.residualLines
           << ", \"note\": ";
        jsonEscape(os, sp.note);
        os << "}";
        first_site = false;
    }
    os << "], \"total_bits\": " << totalBits
       << ", \"residual_total_bits\": " << residualTotalBits
       << ", \"closed\": " << closedSites
       << ", \"narrowed\": " << narrowedSites
       << ", \"open\": " << openSites
       << ", \"verdict\": \""
       << (allClosed() ? "closed"
                       : (openSites == 0 ? "narrowed" : "open"))
       << "\"}";
    return os.str();
}

} // namespace csd

#include "verify/mcu_prover.hh"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>

#include "csd/csd.hh"
#include "csd/msr.hh"
#include "uop/translate.hh"

namespace csd
{

McuBlobView
McuBlobView::real()
{
    McuBlobView view;
    view.checksumOf = [](const McuBlob &blob) { return mcuChecksum(blob); };
    view.revisionOf = [](const McuHeader &header) { return header.revision; };
    view.installedOf = [](const UopVec &uops) { return uops; };
    view.tables = MicroTableView::real();
    view.decoyCoverageOf = [](const AddrRange &range) { return range; };
    return view;
}

namespace
{

const char *
placementName(McuPlacement placement)
{
    switch (placement) {
      case McuPlacement::Prepend: return "prepend";
      case McuPlacement::Append:  return "append";
      case McuPlacement::Replace: return "replace";
    }
    return "unknown";
}

/** Semantic uop equality: every field execution depends on. */
bool
uopSemEq(const Uop &a, const Uop &b)
{
    return a.op == b.op && a.dst == b.dst && a.src1 == b.src1 &&
           a.src2 == b.src2 && a.src3 == b.src3 && a.imm == b.imm &&
           a.disp == b.disp && a.scale == b.scale &&
           a.memSize == b.memSize && a.cond == b.cond &&
           a.lane == b.lane && a.width == b.width &&
           a.writesFlags == b.writesFlags &&
           a.readsFlags == b.readsFlags && a.immData == b.immData;
}

/** @p sub must appear within @p full in order (the optimizer only
 *  ever deletes uops, never reorders or rewrites them). */
bool
isOrderedSubsequence(const UopVec &sub, const UopVec &full)
{
    std::size_t j = 0;
    for (const Uop &uop : sub) {
        while (j < full.size() && !uopSemEq(full[j], uop))
            ++j;
        if (j == full.size())
            return false;
        ++j;
    }
    return true;
}

/** Outcome of the independent remap re-derivation. */
struct ExpectedTranslation
{
    UopVec uops;
    bool controlTransfer = false;
    bool microsequenced = false;
    bool tempOverflow = false;

    bool ok() const
    {
        return !controlTransfer && !microsequenced && !tempOverflow;
    }
};

/**
 * Re-derive what translateEntry must produce *before* its optimizer
 * runs: the concatenated native flows with, under containment, every
 * architectural GPR renamed onto t0..t5 and every architectural XMM
 * onto vt0..vt3 in first-use order (operands visited dst, src1, src2,
 * src3 per uop) and flag writes stripped. Injectivity and totality
 * hold by construction: each architectural register gets a distinct
 * temp, and every operand is visited.
 */
ExpectedTranslation
deriveExpected(const McuEntry &entry, bool allow_arch_writes)
{
    ExpectedTranslation out;
    for (const MacroOp &op : entry.nativeCode) {
        if (isBranch(op.opcode)) {
            out.controlTransfer = true;
            return out;
        }
        if (nativelyMicrosequenced(op.opcode)) {
            out.microsequenced = true;
            return out;
        }
        const UopFlow flow = translateNative(op);
        out.uops.insert(out.uops.end(), flow.uops.begin(),
                        flow.uops.end());
    }
    if (allow_arch_writes)
        return out;

    constexpr unsigned availInt = numIntTemps - 2;  // t6/t7 = decoys
    constexpr unsigned availVec = numVecTemps;
    std::array<int, numGprs> intMap;
    std::array<int, numXmms> vecMap;
    intMap.fill(-1);
    vecMap.fill(-1);
    unsigned nextInt = 0;
    unsigned nextVec = 0;

    auto remap = [&](RegId &reg) -> bool {
        if (!reg.valid())
            return true;
        if (reg.cls == RegClass::Int && reg.idx < numGprs) {
            if (intMap[reg.idx] < 0) {
                if (nextInt >= availInt)
                    return false;
                intMap[reg.idx] = static_cast<int>(nextInt++);
            }
            reg = intTemp(static_cast<unsigned>(intMap[reg.idx]));
        } else if (reg.cls == RegClass::Vec && reg.idx < numXmms) {
            if (vecMap[reg.idx] < 0) {
                if (nextVec >= availVec)
                    return false;
                vecMap[reg.idx] = static_cast<int>(nextVec++);
            }
            reg = vecTemp(static_cast<unsigned>(vecMap[reg.idx]));
        }
        return true;
    };

    for (Uop &uop : out.uops) {
        if (!remap(uop.dst) || !remap(uop.src1) || !remap(uop.src2) ||
            !remap(uop.src3)) {
            out.tempOverflow = true;
            return out;
        }
        uop.writesFlags = false;
    }
    return out;
}

/** Block-aligned lines the entry's absolute sweep loads touch. */
std::set<Addr>
sweptLinesOf(const UopVec &uops)
{
    std::set<Addr> lines;
    for (const Uop &uop : uops) {
        if (uop.isLoad() && !uop.src1.valid() && !uop.src2.valid())
            lines.insert(blockAlign(static_cast<Addr>(uop.disp)));
    }
    return lines;
}

/** Static energy of a uop sequence through the table view (nJ). */
double
flowEnergyNj(const UopVec &uops, const MicroTableView &tables)
{
    double total = 0;
    for (const Uop &uop : uops) {
        const FuClass fu = tables.fuClassOf(uop.op);
        if (fu != FuClass::None)
            total += tables.energyOf(fu);
    }
    return total;
}

/** True iff any register operand of @p uop names architectural
 *  (non-temporary) Int/Vec state. */
bool
touchesArchRegs(const Uop &uop)
{
    for (const RegId &reg : {uop.dst, uop.src1, uop.src2, uop.src3}) {
        if (!reg.valid())
            continue;
        if (reg.cls == RegClass::Int && !reg.isIntTemp())
            return true;
        if (reg.cls == RegClass::Vec && !reg.isVecTemp())
            return true;
    }
    return false;
}

/**
 * Replay the translation_check structural and micro-table invariants
 * against the flow @p target decodes to under the patched engine.
 */
void
auditPatchedFlow(MacroOpcode target, const UopFlow &flow,
                 const MicroTableView &tables, VerifyReport &report)
{
    const std::string name = mnemonic(target);
    auto bad = [&](const std::string &why) {
        report.add("mcu.table-invariant", Severity::Error, invalidAddr,
                   name, name + ": patched flow " + why);
    };

    if (flow.uops.empty()) {
        bad("is empty");
        return;
    }
    for (std::size_t i = 0; i < flow.uops.size(); ++i) {
        const Uop &uop = flow.uops[i];
        for (const RegId &reg :
             {uop.dst, uop.src1, uop.src2, uop.src3}) {
            const bool in_range =
                (reg.cls == RegClass::Int && reg.idx < numIntUopRegs) ||
                (reg.cls == RegClass::Vec && reg.idx < numVecUopRegs) ||
                (reg.cls == RegClass::Flags && reg.idx == 0) ||
                reg.cls == RegClass::None;
            if (!in_range) {
                bad("uop " + std::to_string(i) +
                    " addresses an out-of-range register");
            }
        }
        const FuClass fu = tables.fuClassOf(uop.op);
        if (fu == FuClass::None)
            continue;
        if (tables.portCountOf(fu) == 0) {
            bad("uop " + std::to_string(i) + " (" + toString(uop) +
                ") binds to class " + fuClassName(fu) +
                " which has no issue ports");
        }
        if (fu != FuClass::MemLoad && fu != FuClass::MemStore &&
            tables.latencyOf(uop.op) == 0) {
            bad("uop " + std::to_string(i) + " (" + toString(uop) +
                ") has zero latency outside the memory classes");
        }
        if (tables.energyOf(fu) <= 0.0) {
            bad("uop " + std::to_string(i) + " (" + toString(uop) +
                ") has no per-uop energy entry for class " +
                fuClassName(fu));
        }
    }
}

unsigned
verdictRank(LeakVerdict verdict)
{
    switch (verdict) {
      case LeakVerdict::Open:     return 0;
      case LeakVerdict::Narrowed: return 1;
      case LeakVerdict::Closed:   return 2;
    }
    return 0;
}

} // namespace

McuAudit
proveMcuAdmission(const McuBlob &blob, VerifyReport &report,
                  const McuProveOptions &opts)
{
    McuAudit audit;
    const McuBlobView &view = opts.view;
    const bool allow = blob.header.allowArchWrites;

    // Pass 1: integrity / header soundness.
    if (blob.header.signature != mcuSignature) {
        report.add("mcu.bad-signature", Severity::Error, invalidAddr,
                   "header", "MCU signature is not the CSD magic");
    }
    if (!blob.header.autoTranslate) {
        report.add("mcu.not-auto-translate", Severity::Error, invalidAddr,
                   "header",
                   "update is not marked for CSD auto-translation");
    }
    if (view.checksumOf(blob) != blob.header.checksum) {
        report.add("mcu.checksum-mismatch", Severity::Error, invalidAddr,
                   "header",
                   "checksum does not match the data part (tampered or "
                   "unsealed blob)");
    }
    if (view.revisionOf(blob.header) <= opts.installedRevision) {
        report.add("mcu.revision-downgrade", Severity::Error, invalidAddr,
                   "header",
                   "revision " +
                       std::to_string(view.revisionOf(blob.header)) +
                       " does not exceed the installed revision " +
                       std::to_string(opts.installedRevision));
    }
    if (blob.entries.empty()) {
        report.add("mcu.empty-update", Severity::Error, invalidAddr,
                   "header", "update contains no translation entries");
        return audit;
    }

    // Pass 2: per-entry architectural containment.
    McuEngine scratch;
    std::set<MacroOpcode> seen;
    std::map<MacroOpcode, std::set<Addr>> sweepByTarget;
    bool any_arch_write = false;

    for (const McuEntry &entry : blob.entries) {
        const std::string name = mnemonic(entry.targetOpcode);
        McuEntryAudit ea;
        ea.target = entry.targetOpcode;
        ea.placement = entry.placement;
        ea.nativeOps = entry.nativeCode.size();

        if (!seen.insert(entry.targetOpcode).second) {
            report.add("mcu.duplicate-target", Severity::Error,
                       invalidAddr, name,
                       name + ": two entries target the same opcode; "
                              "install order would be ambiguous");
        }

        const ExpectedTranslation expected =
            deriveExpected(entry, allow);
        if (expected.controlTransfer) {
            report.add("mcu.control-transfer", Severity::Error,
                       invalidAddr, name,
                       name + ": custom translation contains a control "
                              "transfer");
        }
        if (expected.microsequenced) {
            report.add("mcu.microsequenced", Severity::Error, invalidAddr,
                       name,
                       name + ": custom translation contains a natively "
                              "microsequenced instruction");
        }
        if (expected.tempOverflow) {
            report.add("mcu.temp-overflow", Severity::Error, invalidAddr,
                       name,
                       name + ": update names more architectural "
                              "registers than the decoder has "
                              "temporaries");
        }

        CustomTranslation xlat;
        std::string why;
        const bool engine_ok =
            scratch.translateEntry(entry, allow, xlat, &why);
        if (engine_ok != expected.ok()) {
            // A store rejection under containment is the one rule the
            // engine checks after remapping; mirror it here.
            const bool store_reject =
                !allow && expected.ok() &&
                std::any_of(expected.uops.begin(), expected.uops.end(),
                            [](const Uop &u) { return u.isStore(); });
            report.add(store_reject ? "mcu.arch-write-escape"
                                    : "mcu.remap-divergence",
                       Severity::Error, invalidAddr, name,
                       store_reject
                           ? name + ": memory write without "
                                    "allowArchWrites"
                           : name + ": engine admission disagrees with "
                                    "the re-derived remap (" +
                                 (engine_ok ? "engine admits a rejected "
                                              "entry"
                                            : "engine rejected: " + why) +
                                 ")");
            audit.entries.push_back(ea);
            continue;
        }
        if (!engine_ok) {
            audit.entries.push_back(ea);
            continue;
        }

        const UopVec actual = view.installedOf(xlat.uops);
        ea.installedUops = actual.size();
        ea.energyDeltaNj = flowEnergyNj(actual, view.tables);
        if (entry.placement == McuPlacement::Replace) {
            const UopFlow native =
                translateNative(sampleMacroOp(entry.targetOpcode));
            ea.energyDeltaNj -= flowEnergyNj(native.uops, view.tables);
        }
        const std::set<Addr> swept = sweptLinesOf(actual);
        ea.sweptLines = swept.size();
        if (!swept.empty())
            sweepByTarget[entry.targetOpcode].insert(swept.begin(),
                                                     swept.end());

        bool entry_arch_write = false;
        for (std::size_t i = 0; i < actual.size(); ++i) {
            const Uop &uop = actual[i];
            if (writesArchState(uop)) {
                entry_arch_write = true;
                if (!allow) {
                    report.add(
                        "mcu.arch-write-escape", Severity::Error,
                        invalidAddr, name,
                        name + ": uop " + std::to_string(i) + " (" +
                            toString(uop) +
                            ") writes architectural state without "
                            "allowArchWrites");
                }
            }
            if (!allow && touchesArchRegs(uop)) {
                report.add("mcu.remap-divergence", Severity::Error,
                           invalidAddr, name,
                           name + ": uop " + std::to_string(i) + " (" +
                               toString(uop) +
                               ") still names an architectural "
                               "register; the remap is not total");
            }
        }
        any_arch_write |= entry_arch_write;

        if (!isOrderedSubsequence(actual, expected.uops)) {
            report.add("mcu.remap-divergence", Severity::Error,
                       invalidAddr, name,
                       name + ": installed uops are not an ordered "
                              "subsequence of the re-derived remapped "
                              "translation");
        }
        audit.entries.push_back(ea);
    }

    if (allow && !any_arch_write) {
        report.add("mcu.unused-arch-writes", Severity::Warning,
                   invalidAddr, "header",
                   "header declares allowArchWrites but no installed "
                   "uop writes architectural state; drop the privilege");
    }

    // Pass 3: translation-consistency re-audit of the patched flows.
    // A scratch decoder installs the blob for real (no admission hook,
    // so no recursion) and each target is decoded under MCU mode.
    MsrFile msrs;
    ContextSensitiveDecoder csd(msrs);
    std::string apply_error;
    if (csd.mcu().applyUpdate(blob, &apply_error)) {
        csd.setMcuMode(true);
        for (const McuEntry &entry : blob.entries) {
            const UopFlow patched =
                csd.translate(sampleMacroOp(entry.targetOpcode));
            auditPatchedFlow(entry.targetOpcode, patched, view.tables,
                             report);
        }
    } else if (!report.hasErrors()) {
        // Never admit a blob the engine itself would turn away.
        report.add("mcu.translate-reject", Severity::Error, invalidAddr,
                   "header",
                   "engine rejects the update: " + apply_error);
    }

    // Pass 4: channel non-regression for the victim context.
    if (opts.channel != nullptr && opts.channel->program != nullptr) {
        const McuChannelContext &ctx = *opts.channel;
        const LeakProof baseline = proveLeaks(
            *ctx.program, ctx.options, ctx.defense, ctx.prove);

        DefenseModel patched_defense = ctx.defense;
        patched_defense.decoyIRange =
            view.decoyCoverageOf(ctx.defense.decoyIRange);
        patched_defense.decoyDRange =
            view.decoyCoverageOf(ctx.defense.decoyDRange);

        const auto &code = ctx.program->code();
        auto extra = [&](const SiteProof &site) -> std::set<Addr> {
            if (site.footprint.channel != Channel::L1DAccess)
                return {};
            if (site.site.instrIndex >= code.size())
                return {};
            const auto it = sweepByTarget.find(
                code[site.site.instrIndex].opcode);
            return it == sweepByTarget.end() ? std::set<Addr>()
                                             : it->second;
        };
        const LeakProof patched = rejudgeLeaks(
            baseline, ctx.options, patched_defense, ctx.prove, extra);

        audit.channelChecked = true;
        audit.baselineClosed = baseline.closedSites;
        audit.baselineNarrowed = baseline.narrowedSites;
        audit.baselineOpen = baseline.openSites;
        audit.patchedClosed = patched.closedSites;
        audit.patchedNarrowed = patched.narrowedSites;
        audit.patchedOpen = patched.openSites;
        audit.baselineResidualBits = baseline.residualTotalBits;
        audit.patchedResidualBits = patched.residualTotalBits;

        for (std::size_t i = 0; i < baseline.sites.size(); ++i) {
            const SiteProof &before = baseline.sites[i];
            const SiteProof &after = patched.sites[i];
            if (verdictRank(after.verdict) <
                verdictRank(before.verdict)) {
                report.add(
                    "mcu.channel-regression", Severity::Error,
                    before.site.pc, before.site.symbol,
                    ctx.name + ": site verdict regresses from " +
                        verdictName(before.verdict) + " to " +
                        verdictName(after.verdict) +
                        " under the patched translation");
            }
        }
    }

    return audit;
}

std::string
McuAudit::json(const std::string &blob_name) const
{
    std::ostringstream os;
    os << "{\"blob\": ";
    jsonEscape(os, blob_name);
    os << ", \"entries\": [";
    bool first = true;
    for (const McuEntryAudit &ea : entries) {
        os << (first ? "" : ", ") << "{\"target\": ";
        jsonEscape(os, mnemonic(ea.target));
        os << ", \"placement\": \"" << placementName(ea.placement)
           << "\", \"native_ops\": " << ea.nativeOps
           << ", \"installed_uops\": " << ea.installedUops
           << ", \"energy_delta_nj\": " << ea.energyDeltaNj
           << ", \"swept_lines\": " << ea.sweptLines << "}";
        first = false;
    }
    os << "], \"channel_checked\": "
       << (channelChecked ? "true" : "false");
    if (channelChecked) {
        os << ", \"baseline\": {\"closed\": " << baselineClosed
           << ", \"narrowed\": " << baselineNarrowed
           << ", \"open\": " << baselineOpen
           << ", \"residual_bits\": " << baselineResidualBits
           << "}, \"patched\": {\"closed\": " << patchedClosed
           << ", \"narrowed\": " << patchedNarrowed
           << ", \"open\": " << patchedOpen
           << ", \"residual_bits\": " << patchedResidualBits << "}";
    }
    os << "}";
    return os.str();
}

McuEngine::AdmissionProver
mcuAdmissionProver(McuProveOptions opts)
{
    return [opts](const McuBlob &blob, const McuEngine &engine,
                  std::string *error) {
        McuProveOptions local = opts;
        local.installedRevision = engine.installedRevision();
        VerifyReport report;
        proveMcuAdmission(blob, report, local);
        if (!report.hasErrors())
            return true;
        if (error) {
            for (const Finding &finding : report.findings()) {
                if (finding.severity == Severity::Error) {
                    *error = finding.toString();
                    break;
                }
            }
        }
        return false;
    };
}

} // namespace csd

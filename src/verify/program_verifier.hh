/**
 * @file
 * Dataflow checks over a Program's CFG.
 *
 * Two passes (see DESIGN.md "Verification layer"):
 *
 *  - Path walk: a memoized DFS over execution paths carrying the
 *    call/return stack and the push/pop depth. Finds unbalanced
 *    stacks, pop/ret underflows, ret-without-call, halting with live
 *    stack values, and falling off the end of the code. It also marks
 *    reachable blocks (unreachable ones are reported) and discovers
 *    the concrete Ret -> return-site edges the dataflow pass needs.
 *
 *  - Dataflow: an iterative forward analysis (may-undefined, constant
 *    propagation, taint) that reports use-before-def registers,
 *    branches on undefined flags, statically resolvable memory
 *    accesses outside declared regions, stores into code, and the
 *    leak lint: secret-tainted branches and tainted-index accesses.
 */

#ifndef CSD_VERIFY_PROGRAM_VERIFIER_HH
#define CSD_VERIFY_PROGRAM_VERIFIER_HH

#include "verify/cfg.hh"
#include "verify/finding.hh"
#include "verify/options.hh"

namespace csd
{

/**
 * Walk execution paths from the entry: stack-balance checks,
 * reachability marking, and Ret return-site edge discovery.
 */
void runPathWalk(Cfg &cfg, const VerifyOptions &options,
                 VerifyReport &report);

/**
 * Iterative dataflow over the (path-walked) CFG: use-before-def,
 * memory-region checks, and the leak lint. Expects runPathWalk() to
 * have marked reachability and added return edges.
 */
void runDataflow(const Cfg &cfg, const VerifyOptions &options,
                 VerifyReport &report);

} // namespace csd

#endif // CSD_VERIFY_PROGRAM_VERIFIER_HH

/**
 * @file
 * Dataflow checks over a Program's CFG.
 *
 * Two passes (see DESIGN.md "Verification layer"):
 *
 *  - Path walk: a memoized DFS over execution paths carrying the
 *    call/return stack and the push/pop depth. Finds unbalanced
 *    stacks, pop/ret underflows, ret-without-call, halting with live
 *    stack values, and falling off the end of the code. It also marks
 *    reachable blocks (unreachable ones are reported) and discovers
 *    the concrete Ret -> return-site edges the dataflow pass needs.
 *
 *  - Dataflow: an iterative forward analysis (may-undefined, constant
 *    propagation, taint) that reports use-before-def registers,
 *    branches on undefined flags, statically resolvable memory
 *    accesses outside declared regions, stores into code, and the
 *    leak lint: secret-tainted branches and tainted-index accesses.
 */

#ifndef CSD_VERIFY_PROGRAM_VERIFIER_HH
#define CSD_VERIFY_PROGRAM_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "verify/cfg.hh"
#include "verify/finding.hh"
#include "verify/options.hh"

namespace csd
{

/** How a leak site leaks (mirrors the leak.* check ids). */
enum class LeakKind : std::uint8_t
{
    TaintedBranch,    //!< leak.tainted-branch on a conditional branch
    TaintedIndirect,  //!< leak.tainted-branch on an indirect jump
    TaintedIndex,     //!< leak.tainted-index on a load/store address
};

/** Printable kind name ("tainted-branch"/...). */
const char *leakKindName(LeakKind kind);

/**
 * One confirmed leak site, with the dataflow facts the channel model
 * needs to resolve its secret-dependent footprint into concrete
 * hardware coordinates (verify/channel_model.hh).
 */
struct LeakSite
{
    LeakKind kind = LeakKind::TaintedBranch;
    Addr pc = invalidAddr;
    std::string symbol;
    std::size_t instrIndex = 0;  //!< index into Program::code()

    // TaintedIndex facts
    bool isStore = false;
    bool baseKnown = false;   //!< base+disp statically resolved
    Addr baseAddr = 0;        //!< resolved base (table start)
    unsigned accessBytes = 0;

    // TaintedBranch facts
    Addr targetPc = invalidAddr;  //!< direct branch target
};

/**
 * Walk execution paths from the entry: stack-balance checks,
 * reachability marking, and Ret return-site edge discovery.
 */
void runPathWalk(Cfg &cfg, const VerifyOptions &options,
                 VerifyReport &report);

/**
 * Iterative dataflow over the (path-walked) CFG: use-before-def,
 * memory-region checks, and the leak lint. Expects runPathWalk() to
 * have marked reachability and added return edges. When @p leak_sites
 * is non-null, every leak.* finding also records a LeakSite with the
 * dataflow facts the channel model consumes.
 */
void runDataflow(const Cfg &cfg, const VerifyOptions &options,
                 VerifyReport &report,
                 std::vector<LeakSite> *leak_sites = nullptr);

} // namespace csd

#endif // CSD_VERIFY_PROGRAM_VERIFIER_HH

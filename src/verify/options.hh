/**
 * @file
 * Configuration for the program verifier (see verify/verify.hh).
 */

#ifndef CSD_VERIFY_OPTIONS_HH
#define CSD_VERIFY_OPTIONS_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/addr_range.hh"
#include "isa/registers.hh"

namespace csd
{

/** Knobs for verifyProgram(). Defaults match the shipped workloads. */
struct VerifyOptions
{
    /**
     * Secret memory ranges (e.g. the RSA exponent, AES round keys).
     * The static leak lint only runs when at least one is given.
     */
    std::vector<AddrRange> taintSources;

    /**
     * Memory regions outside the program's own data/stack that it may
     * legitimately touch (e.g. a spy probing a victim's addresses).
     */
    std::vector<AddrRange> extraRegions;

    /** GPRs holding defined values at entry (Rsp always counts). */
    std::vector<Gpr> entryDefined;

    /** Flag statically resolvable accesses outside declared regions. */
    bool checkMemRegions = true;

    /** Flag reads of never-written GPRs (may-analysis). */
    bool checkUseBeforeDef = true;

    /**
     * Also flag reads of never-written XMM registers. Off by default:
     * architectural registers are zero-initialized in ArchState, and
     * the synthetic SPEC generators rely on that for vector seeds.
     */
    bool checkVecUseBeforeDef = false;

    /** Run the secret-dependent branch/index lint (needs sources). */
    bool leakLint = true;

    /**
     * The program is a known-leaky victim: csd-lint consumes its
     * leak.* findings as confirmations and reports leak.expected-miss
     * if the lint found nothing (a hole in the taint configuration).
     */
    bool expectLeak = false;

    /** Stack extent: [stackBase - stackBytes, stackBase + 4 KiB). */
    Addr stackBase = 0x7ffff000;
    std::uint64_t stackBytes = 1 << 20;

    /** Check ids to suppress entirely. */
    std::set<std::string> suppress;

    /** Path-walk state budget before giving up with cfg.state-limit. */
    std::size_t maxWalkStates = 1 << 20;
};

} // namespace csd

#endif // CSD_VERIFY_OPTIONS_HH

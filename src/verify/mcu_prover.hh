/**
 * @file
 * Static MCU admission prover (see DESIGN.md "MCU admission
 * contract").
 *
 * The paper's §III-C microcode-update path lets a privileged runtime
 * hot-load custom translations into the decoder — the repo's defense
 * distribution channel. This pass proves, per update entry, that a
 * blob is safe to install *before* it can load:
 *
 *  1. integrity / header soundness — signature, checksum over the
 *     data part, revision monotonicity against the engine's installed
 *     revision, autoTranslate consistency, no duplicate targets;
 *
 *  2. architectural containment — an abstract-interpretation walk over
 *     the auto-translated uops proving no architectural GPR / XMM /
 *     flags / memory write escapes unless the header declares
 *     allowArchWrites, and that the engine's GPR→decoder-temp
 *     remapping is injective and total. The remap rules are re-derived
 *     independently here (first-use order onto t0..t5 / vt0..vt3,
 *     flag-write stripping) the way tier_equiv.cc re-derives execUop's
 *     dispatch groups, and the engine's output must be an ordered
 *     subsequence (the optimizer only deletes) of that re-derivation;
 *
 *  3. translation-consistency re-audit — the patched flow each target
 *     opcode would decode to under MCU mode is replayed against the
 *     translation_check structural and micro-table invariants
 *     (register ranges, port binding, latency, energy coverage);
 *
 *  4. channel non-regression — the leak prover's closed/narrowed/open
 *     judgment for every confirmed site of a victim context is
 *     re-scored under the patched translation; any closed→narrowed or
 *     closed→open transition is an error. Sweep loads the update adds
 *     to a flow count as extra always-hot coverage, and the per-entry
 *     static energy delta is published from the constexpr tables.
 *
 * All engine state is read through McuBlobView (a struct of
 * std::functions with a real() factory, like MicroTableView and
 * SuperblockView) so seeded-defect tests prove every check fires
 * without corrupting a real blob or engine. The prover doubles as the
 * runtime admission hook: mcuAdmissionProver() adapts it to
 * McuEngine::setAdmissionProver so offline lint and applyUpdate are
 * the same code path.
 */

#ifndef CSD_VERIFY_MCU_PROVER_HH
#define CSD_VERIFY_MCU_PROVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "csd/mcu.hh"
#include "verify/finding.hh"
#include "verify/leak_prover.hh"
#include "verify/translation_check.hh"

namespace csd
{

/** Indirection over blob/engine state for fault-injection tests. */
struct McuBlobView
{
    /** Checksum of the data part (real: mcuChecksum). */
    std::function<std::uint32_t(const McuBlob &)> checksumOf;

    /** Header revision as the admission check sees it. */
    std::function<std::uint32_t(const McuHeader &)> revisionOf;

    /** The uops the engine would install for an entry (real:
     *  identity over translateEntry's output). */
    std::function<UopVec(const UopVec &)> installedOf;

    /** The micro-op tables the patched flow is audited against. */
    MicroTableView tables;

    /**
     * Decoy MSR coverage surviving under the patched translator
     * (real: identity — applyMcu runs before stealth decoy injection,
     * so installing an update never masks a decoy range; see
     * csd.cc::translate). A defect here models a translator whose
     * Replace placement clobbers the decoy pass.
     */
    std::function<AddrRange(const AddrRange &)> decoyCoverageOf;

    /** The shipping engine semantics. */
    static McuBlobView real();
};

/**
 * Victim context the channel non-regression check scores against:
 * the program, the lint options its leak sites were confirmed with,
 * and the defense configuration in force.
 */
struct McuChannelContext
{
    const Program *program = nullptr;
    VerifyOptions options;
    DefenseModel defense;
    ProveOptions prove;
    std::string name;  //!< target label for messages/JSON
};

/** Prover inputs. */
struct McuProveOptions
{
    McuBlobView view = McuBlobView::real();

    /** Engine revision watermark the blob must exceed. */
    std::uint32_t installedRevision = 0;

    /** Victim context for pass 4; null skips the channel check. */
    const McuChannelContext *channel = nullptr;
};

/** Per-entry audit facts (published alongside the findings). */
struct McuEntryAudit
{
    MacroOpcode target = MacroOpcode::Nop;
    McuPlacement placement = McuPlacement::Append;
    std::size_t nativeOps = 0;       //!< macro-ops in the data part
    std::size_t installedUops = 0;   //!< custom uops after optimization
    /** Static energy delta per execution of the target opcode (nJ):
     *  custom-uop energy, minus the replaced native flow's energy for
     *  Replace placement. */
    double energyDeltaNj = 0;
    /** Always-hot lines the entry's absolute sweep loads cover. */
    std::size_t sweptLines = 0;
};

/** The proof artifact for one blob. */
struct McuAudit
{
    std::vector<McuEntryAudit> entries;

    bool channelChecked = false;
    std::size_t baselineClosed = 0;
    std::size_t baselineNarrowed = 0;
    std::size_t baselineOpen = 0;
    std::size_t patchedClosed = 0;
    std::size_t patchedNarrowed = 0;
    std::size_t patchedOpen = 0;
    double baselineResidualBits = 0;
    double patchedResidualBits = 0;

    /** JSON object for the csd-lint --mcu report. */
    std::string json(const std::string &blob_name) const;
};

/**
 * Prove @p blob admissible. Findings (mcu.* ids) go to @p report;
 * returns the audit facts. The blob is never installed anywhere —
 * translation replay happens against scratch engines.
 */
McuAudit proveMcuAdmission(const McuBlob &blob, VerifyReport &report,
                           const McuProveOptions &opts = {});

/**
 * Adapt the prover to McuEngine::setAdmissionProver. The returned
 * hook re-reads the engine's installed revision at apply time and
 * rejects with the first finding's rendering as the error string.
 */
McuEngine::AdmissionProver mcuAdmissionProver(McuProveOptions opts = {});

} // namespace csd

#endif // CSD_VERIFY_MCU_PROVER_HH

#include "power/energy.hh"

namespace csd
{

double
EnergyModel::uopEnergy(const Uop &uop) const
{
    switch (fuClass(uop)) {
      case FuClass::IntAlu:   return params_.intAluEnergy;
      case FuClass::IntMul:   return params_.intMulEnergy;
      case FuClass::Branch:   return params_.branchEnergy;
      case FuClass::MemLoad:  return params_.memLoadEnergy;
      case FuClass::MemStore: return params_.memStoreEnergy;
      case FuClass::VecAlu:   return params_.vecAluEnergy;
      case FuClass::VecMul:   return params_.vecMulEnergy;
      case FuClass::VecFpDiv: return params_.vecDivEnergy;
      case FuClass::FpScalar: return params_.fpScalarEnergy;
      case FuClass::None:     return 0.0;
    }
    return 0.0;
}

} // namespace csd

#include "power/energy.hh"

// EnergyModel is header-only (the per-uop lookup must inline into the
// simulator's hot loop); this TU just anchors the header's build.

namespace csd
{
} // namespace csd

/**
 * @file
 * McPAT-style energy model @32nm (paper §V, §VI-A).
 *
 * Per-unit dynamic energy per micro-op, per-cycle static leakage for
 * the core and the vector processing unit, the Hu et al. power-gating
 * overhead model (Equation 1), and the header-transistor leakage while
 * gated. Absolute joules are representative McPAT-derived constants;
 * every paper result uses energy *ratios*, which these preserve.
 */

#ifndef CSD_POWER_ENERGY_HH
#define CSD_POWER_ENERGY_HH

#include <array>

#include "common/types.hh"
#include "uop/uop.hh"

namespace csd
{

/** Energy model parameters (nanojoules / nJ-per-cycle). */
struct EnergyParams
{
    // Dynamic energy per micro-op, by functional-unit class (nJ).
    double intAluEnergy = 0.010;
    double intMulEnergy = 0.030;
    double branchEnergy = 0.010;
    double memLoadEnergy = 0.055;   //!< includes L1D access
    double memStoreEnergy = 0.055;
    double vecAluEnergy = 0.085;
    double vecMulEnergy = 0.130;
    double vecDivEnergy = 0.210;
    double fpScalarEnergy = 0.045;

    // Front-end dynamic energy per delivered uop (nJ): the legacy
    // decode pipeline burns more than a micro-op cache stream.
    double legacyDecodeEnergy = 0.012;
    double uopCacheStreamEnergy = 0.004;

    // Static leakage (nJ per cycle).
    double coreLeakage = 0.450;     //!< everything but the VPU
    double vpuLeakage = 0.210;      //!< the VPU's share (significant
                                    //!< portion of core peak, §II)

    /**
     * Hu et al. Equation 1: the area ratio of the sleep (header)
     * transistor to the unit. The literature estimates 0.05-0.20; the
     * paper conservatively uses 0.20.
     */
    double headerAreaRatio = 0.20;  //!< W_H

    /** VPU switching energy for one fully active cycle (E_cycle/alpha,
     *  from McPAT): peak switching of the full-width SIMD datapath
     *  including its clock tree. Yields a break-even time of a few
     *  cycles with the conservative W_H = 0.20. */
    double vpuSwitchingEnergyPerCycle = 3.0;

    /** Leakage of the header transistor itself while gated (nJ/cycle). */
    double headerLeakage = 0.012;

    /** Cycles to power the VPU back on (Laurenzano et al. estimate). */
    Cycles vpuWakeLatency = 30;
};

/** Derived quantities of the gating model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {})
        : params_(params)
    {
        // Flatten the per-class energies into a FuClass-indexed table:
        // uopEnergy runs once per simulated uop.
        energyByFu_[static_cast<std::size_t>(FuClass::IntAlu)] =
            params_.intAluEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::IntMul)] =
            params_.intMulEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::Branch)] =
            params_.branchEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::MemLoad)] =
            params_.memLoadEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::MemStore)] =
            params_.memStoreEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::VecAlu)] =
            params_.vecAluEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::VecMul)] =
            params_.vecMulEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::VecFpDiv)] =
            params_.vecDivEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::FpScalar)] =
            params_.fpScalarEnergy;
        energyByFu_[static_cast<std::size_t>(FuClass::None)] = 0.0;
    }

    const EnergyParams &params() const { return params_; }

    /** Dynamic energy of one executed micro-op (nJ). */
    double
    uopEnergy(const Uop &uop) const
    {
        return energyByFu_[static_cast<std::size_t>(fuClass(uop))];
    }

    /**
     * E_overhead of one gate/ungate pair (Hu et al. Eq. 1):
     * E_overhead ~= 2 * W_H * E_cycle/alpha.
     */
    double
    gatingOverhead() const
    {
        return 2.0 * params_.headerAreaRatio *
               params_.vpuSwitchingEnergyPerCycle;
    }

    /**
     * Break-even time: cycles the VPU must stay gated for the saved
     * leakage (net of header leakage) to repay the gating overhead.
     */
    Cycles
    breakEvenCycles() const
    {
        const double saved_per_cycle =
            params_.vpuLeakage - params_.headerLeakage;
        if (saved_per_cycle <= 0)
            return ~static_cast<Cycles>(0);
        return static_cast<Cycles>(gatingOverhead() / saved_per_cycle) + 1;
    }

  private:
    EnergyParams params_;
    std::array<double, 10> energyByFu_{};  //!< indexed by FuClass
};

/** Accumulated energy breakdown (Fig. 12's stack components), in nJ. */
struct EnergyBreakdown
{
    double coreDynamic = 0;
    double coreStatic = 0;
    double vpuDynamic = 0;
    double vpuStatic = 0;       //!< leakage while on or waking
    double headerStatic = 0;    //!< header leakage while gated
    double gatingOverhead = 0;  //!< switch on/off energy
    double frontendDynamic = 0;

    double
    total() const
    {
        return coreDynamic + coreStatic + vpuDynamic + vpuStatic +
               headerStatic + gatingOverhead + frontendDynamic;
    }
};

} // namespace csd

#endif // CSD_POWER_ENERGY_HH

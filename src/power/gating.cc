#include "power/gating.hh"

#include "common/logging.hh"

namespace csd
{

PowerGateController::PowerGateController(const GatingParams &params,
                                         const EnergyModel &energy)
    : params_(params), energy_(energy), stats_("gating")
{
    stats_.addCounter("gate_events", &gateEvents_,
                      "times the VPU was power-gated");
    stats_.addCounter("wake_events", &wakeEvents_,
                      "times the VPU was powered back on");
    stats_.addCounter("demand_wakes", &demandWakes_,
                      "wakes forced by a stalled vector instruction");
    stats_.addCounter("sse_powered_on", &sseCounts_[0],
                      "SSE instructions executed on the VPU");
    stats_.addCounter("sse_powering_on", &sseCounts_[1],
                      "SSE instructions devectorized during wake");
    stats_.addCounter("sse_power_gated", &sseCounts_[2],
                      "SSE instructions devectorized while gated");
    stats_.addDistribution("gated_stretch", &gatedStretch_,
                           "length of each gated period (cycles)");
    gatedFrac_ = [this] { return gatedFraction(); };
    stats_.addFormula("gated_fraction", &gatedFrac_,
                      "fraction of time the VPU spent power-gated");
}

void
PowerGateController::accountUntil(Tick now)
{
    if (now <= lastNow_)
        return;
    const Cycles delta = now - lastNow_;
    switch (state_) {
      case VpuState::On:         onCycles_ += delta; break;
      case VpuState::PoweringOn: wakingCycles_ += delta; break;
      case VpuState::Gated:      gatedCycles_ += delta; break;
    }
    lastNow_ = now;
}

void
PowerGateController::switchState(VpuState next, Tick now)
{
    accountUntil(now);
    if (next == state_)
        return;
    if (state_ == VpuState::Gated) {
        // Leaving the gated state closes one gated stretch.
        gatedStretch_.sample(static_cast<double>(now - stateSince_));
        CSD_TRACE(Gating, "vpu_gated", now, 'E');
    }
    if (next == VpuState::Gated) {
        ++gateEvents_;
        CSD_TRACE(Gating, "vpu_gated", now, 'B');
    }
    if (next == VpuState::PoweringOn) {
        ++wakeEvents_;
        wakeDoneAt_ = now + energy_.params().vpuWakeLatency;
        CSD_TRACE(Gating, "wake_start", now);
    }
    if (next == VpuState::On && state_ == VpuState::PoweringOn)
        CSD_TRACE(Gating, "wake_done", now);
    state_ = next;
    stateSince_ = now;
}

bool
PowerGateController::vpuUsable(Tick now)
{
    if (state_ == VpuState::PoweringOn && now >= wakeDoneAt_)
        switchState(VpuState::On, now);
    return state_ == VpuState::On;
}

PowerGateController::Directive
PowerGateController::onMacroOp(const MacroOp &op, Tick now,
                               unsigned vec_uops)
{
    accountUntil(now);
    Directive directive;

    // Maintain the vector-activity window.
    const unsigned weight = isVector(op.opcode) ? std::max(vec_uops, 1u)
                                                : 0u;
    window_.push_back(weight);
    windowCount_ += weight;
    while (window_.size() > params_.windowInstrs) {
        windowCount_ -= window_.front();
        window_.pop_front();
    }

    const bool uses_vpu = vec_uops > 0;

    switch (params_.policy) {
      case GatingPolicy::AlwaysOn:
        if (uses_vpu)
            ++sseCounts_[static_cast<unsigned>(SseExecClass::PoweredOn)];
        break;

      case GatingPolicy::ConventionalPG: {
        const Cycles threshold = std::max(params_.idleGateThreshold,
                                          energy_.breakEvenCycles());
        if (uses_vpu) {
            if (!vpuUsable(now)) {
                // Demand wake: the pipeline stalls while the VPU
                // powers on (conventional gating's cost).
                const Cycles stall = state_ == VpuState::PoweringOn
                    ? (wakeDoneAt_ > now ? wakeDoneAt_ - now : 0)
                    : energy_.params().vpuWakeLatency;
                if (state_ == VpuState::Gated)
                    switchState(VpuState::PoweringOn, now);
                ++demandWakes_;
                CSD_TRACE(Gating, "demand_wake", now, 'i', "stall",
                          static_cast<double>(stall));
                directive.stallCycles = stall;
                switchState(VpuState::On, now + stall);
                lastNow_ = now;  // caller advances time by stall
            }
            ++sseCounts_[static_cast<unsigned>(SseExecClass::PoweredOn)];
            lastVectorUse_ = now;
        } else if (state_ == VpuState::On &&
                   now - lastVectorUse_ > threshold) {
            switchState(VpuState::Gated, now);
        }
        break;
      }

      case GatingPolicy::CsdDevect: {
        // Unit-criticality decisions from the window counter.
        if (state_ == VpuState::On &&
            windowCount_ <= params_.lowWatermark) {
            switchState(VpuState::Gated, now);
        } else if (state_ == VpuState::Gated &&
                   windowCount_ >= params_.highWatermark) {
            switchState(VpuState::PoweringOn, now);
        }
        if (uses_vpu) {
            lastVectorUse_ = now;
            if (vpuUsable(now)) {
                ++sseCounts_[static_cast<unsigned>(
                    SseExecClass::PoweredOn)];
            } else {
                // Execute scalarized; no stall (paper §V: CSD hides the
                // power-on delay by continuing in scalar mode).
                directive.devectorize = true;
                ++sseCounts_[static_cast<unsigned>(
                    state_ == VpuState::PoweringOn
                        ? SseExecClass::PoweringOn
                        : SseExecClass::PowerGated)];
            }
        } else {
            vpuUsable(now);  // complete a pending wake
        }
        break;
      }
    }

    return directive;
}

void
PowerGateController::finalize(Tick now)
{
    vpuUsable(now);
    accountUntil(now);
}

double
PowerGateController::gatedFraction() const
{
    const double total = static_cast<double>(gatedCycles_) +
                         wakingCycles_ + onCycles_;
    return total == 0 ? 0.0 : static_cast<double>(gatedCycles_) / total;
}

} // namespace csd

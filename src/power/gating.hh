/**
 * @file
 * VPU power-gating controller and policies (paper §V, Fig. 5).
 *
 * Three policies are modeled:
 *  - AlwaysOn: the VPU never gates (baseline of Fig. 13).
 *  - ConventionalPG: gate after an idle period, wake on demand while
 *    the pipeline stalls for the 30-cycle power-on.
 *  - CsdDevect: a windowed vector-activity counter (simple vector
 *    instructions count 1, complex ones their uop count); below the
 *    low watermark the controller gates the VPU and turns on CSD
 *    devectorization, above the high watermark it powers the unit back
 *    on while devectorization hides the wake latency.
 */

#ifndef CSD_POWER_GATING_HH
#define CSD_POWER_GATING_HH

#include <deque>

#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "isa/macroop.hh"
#include "power/energy.hh"

namespace csd
{

/** Gating policy selector. */
enum class GatingPolicy : std::uint8_t
{
    AlwaysOn,
    ConventionalPG,
    CsdDevect,
};

/** VPU power state. */
enum class VpuState : std::uint8_t
{
    On,
    PoweringOn,  //!< wake initiated, not yet usable
    Gated,
};

/** Per-SSE-instruction classification (Fig. 16's categories). */
enum class SseExecClass : std::uint8_t
{
    PoweredOn,   //!< executed on the VPU
    PoweringOn,  //!< devectorized while the VPU was waking
    PowerGated,  //!< devectorized while the VPU was gated
};

/** Controller configuration. */
struct GatingParams
{
    GatingPolicy policy = GatingPolicy::CsdDevect;

    /** Instruction window over which vector activity is counted. */
    unsigned windowInstrs = 256;
    /** Gate + devectorize below this count (CsdDevect). */
    unsigned lowWatermark = 2;
    /** Initiate power-on above this count (CsdDevect). */
    unsigned highWatermark = 8;

    /**
     * ConventionalPG: idle cycles before gating (a realistic
     * idle-detect interval; always clamped up to the energy model's
     * break-even time).
     */
    Cycles idleGateThreshold = 150;
};

/**
 * The unit-criticality-driven power-gating controller.
 *
 * Driven in program order: the simulator calls onMacroOp() for every
 * instruction with the current cycle; the returned directive says
 * whether the instruction must be devectorized and how many stall
 * cycles a demand wake costs (ConventionalPG only).
 */
class PowerGateController
{
  public:
    PowerGateController(const GatingParams &params,
                        const EnergyModel &energy);

    /** Directive for one instruction. */
    struct Directive
    {
        bool devectorize = false;  //!< translate to scalar uops
        Cycles stallCycles = 0;    //!< demand-wake stall (conventional)
    };

    /**
     * Observe one macro-op in program order at cycle @p now.
     * @param vec_uops the VPU uop count of the instruction's native
     *        translation (0 for non-vector instructions)
     */
    Directive onMacroOp(const MacroOp &op, Tick now, unsigned vec_uops);

    /** Finish accounting at the end of simulation. */
    void finalize(Tick now);

    VpuState state() const { return state_; }

    // --- results -----------------------------------------------------

    Cycles gatedCycles() const { return gatedCycles_; }
    Cycles wakingCycles() const { return wakingCycles_; }
    Cycles onCycles() const { return onCycles_; }
    std::uint64_t gateEvents() const { return gateEvents_.value(); }

    std::uint64_t sseCount(SseExecClass cls) const
    {
        return sseCounts_[static_cast<unsigned>(cls)].value();
    }

    /** Fraction of time the VPU spent power-gated (Fig. 15). */
    double gatedFraction() const;

    StatGroup &stats() { return stats_; }

  private:
    void switchState(VpuState next, Tick now);
    void accountUntil(Tick now);
    bool vpuUsable(Tick now);

    GatingParams params_;
    const EnergyModel &energy_;

    VpuState state_ = VpuState::On;
    Tick stateSince_ = 0;
    Tick wakeDoneAt_ = 0;
    Tick lastVectorUse_ = 0;
    Tick lastNow_ = 0;

    // Sliding window of per-instruction vector weights.
    std::deque<unsigned> window_;
    std::uint64_t windowCount_ = 0;

    Cycles gatedCycles_ = 0;
    Cycles wakingCycles_ = 0;
    Cycles onCycles_ = 0;

    StatGroup stats_;
    Counter gateEvents_;
    Counter wakeEvents_;
    Counter demandWakes_;
    Counter sseCounts_[3];
    Distribution gatedStretch_{0, 20000, 20};
    Formula gatedFrac_;
};

} // namespace csd

#endif // CSD_POWER_GATING_HH

#include "obs/host_profiler.hh"

namespace csd
{

namespace
{

const char *const phaseNames[static_cast<unsigned>(HostPhase::NumPhases)] = {
    "translate", "flow_cache", "execute", "pipeline",
    "memory",    "stat_overhead", "channel_monitor", "superblock",
    "other",
};

} // namespace

const char *
HostProfiler::phaseName(HostPhase phase)
{
    const auto idx = static_cast<unsigned>(phase);
    if (idx >= static_cast<unsigned>(HostPhase::NumPhases))
        return "?";
    return phaseNames[idx];
}

void
HostProfiler::writePhasesJson(std::ostream &os) const
{
    os << "{\"total\": " << totalSeconds();
    if (enabled_) {
        for (unsigned i = 0; i < static_cast<unsigned>(HostPhase::NumPhases);
             ++i) {
            os << ", \"" << phaseNames[i] << "\": " << seconds_[i];
        }
    }
    os << "}";
}

} // namespace csd

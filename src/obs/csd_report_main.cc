/**
 * @file
 * csd-report: diff two stats dumps / bench JSON sidecars.
 *
 *   csd-report old.json new.json [--top N] [--json FILE]
 *              [--kind cpi|energy|channel|other]
 *
 * Prints the statistics that moved between the two artifacts, sorted
 * by absolute delta (largest first), with absolute and percentage
 * change and a coarse kind so CPI buckets, energy terms, and
 * side-channel metrics can be isolated. --json FILE additionally
 * writes the full (untruncated) diff machine-readably, so CI can gate
 * on specific keys instead of scraping the table. Exits 0 when the
 * artifacts are identical (modulo manifest), 1 when they differ, 2 on
 * usage or I/O errors — so scripts can use it as a cheap regression
 * gate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/report.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s old.json new.json [--top N] [--json FILE] "
                 "[--kind cpi|energy|channel|other]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string old_path;
    std::string new_path;
    std::size_t top = 20;
    std::string kind;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top") {
            if (++i >= argc)
                return usage(argv[0]);
            char *end = nullptr;
            const long n = std::strtol(argv[i], &end, 10);
            if (!*argv[i] || (end && *end) || n < 0) {
                std::fprintf(stderr,
                             "csd-report: --top '%s' is not a "
                             "non-negative integer\n",
                             argv[i]);
                return 2;
            }
            top = static_cast<std::size_t>(n);
        } else if (arg == "--json") {
            if (++i >= argc)
                return usage(argv[0]);
            json_path = argv[i];
        } else if (arg == "--kind") {
            if (++i >= argc)
                return usage(argv[0]);
            kind = argv[i];
            if (kind != "cpi" && kind != "energy" && kind != "channel" &&
                kind != "other") {
                std::fprintf(stderr, "csd-report: unknown kind '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "csd-report: unknown option '%s'\n",
                         argv[i]);
            return usage(argv[0]);
        } else if (old_path.empty()) {
            old_path = arg;
        } else if (new_path.empty()) {
            new_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (old_path.empty() || new_path.empty())
        return usage(argv[0]);

    try {
        const auto old_stats = csd::obs::loadFlattened(old_path);
        const auto new_stats = csd::obs::loadFlattened(new_path);
        const auto rows = csd::obs::diffStats(old_stats, new_stats);

        std::cout << "csd-report: " << old_path << " -> " << new_path
                  << " (" << rows.size() << " differing statistic"
                  << (rows.size() == 1 ? "" : "s") << ")\n";
        csd::obs::writeReport(std::cout, rows, top, kind);
        if (!json_path.empty()) {
            std::ofstream out(json_path);
            if (!out) {
                std::fprintf(stderr, "csd-report: cannot write %s\n",
                             json_path.c_str());
                return 2;
            }
            csd::obs::writeReportJson(out, old_path, new_path, rows,
                                      kind);
            if (!out.flush()) {
                std::fprintf(stderr, "csd-report: write to %s failed\n",
                             json_path.c_str());
                return 2;
            }
        }
        return rows.empty() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "csd-report: %s\n", e.what());
        return 2;
    }
}

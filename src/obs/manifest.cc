#include "obs/manifest.hh"

#include <cstdio>
#include <sstream>
#include <thread>

#ifdef __unix__
#include <sys/utsname.h>
#include <unistd.h>
#endif

#include "common/stats.hh"
#include "obs/build_info.hh"
#include "obs/host_profiler.hh"

namespace csd
{
namespace obs
{

ConfigHasher &
ConfigHasher::add(std::string_view key, std::string_view value)
{
    // Hash key and value with separators so ("ab","c") != ("a","bc").
    h_ = fnv1a64(key, h_);
    h_ = fnv1a64("=", h_);
    h_ = fnv1a64(value, h_);
    h_ = fnv1a64(";", h_);
    return *this;
}

ConfigHasher &
ConfigHasher::add(std::string_view key, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return add(key, std::string_view(buf));
}

std::string
ConfigHasher::hex() const
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(h_));
    return buf;
}

void
Manifest::note(std::string key, std::string_view string_value)
{
    extras.emplace_back(std::move(key),
                        "\"" + jsonEscape(std::string(string_value)) + "\"");
}

void
Manifest::noteRaw(std::string key, std::string json_value)
{
    extras.emplace_back(std::move(key), std::move(json_value));
}

void
Manifest::note(std::string key, std::uint64_t value)
{
    noteRaw(std::move(key), std::to_string(value));
}

void
Manifest::note(std::string key, double value)
{
    std::ostringstream os;
    os << value;
    noteRaw(std::move(key), os.str());
}

void
Manifest::write(std::ostream &os, const std::string &indent,
                const HostProfiler *profiler) const
{
    const std::string in2 = indent + "  ";
    os << indent << "\"manifest\": {\n";
    os << in2 << "\"schema_version\": " << schemaVersion << ",\n";
    os << in2 << "\"config_hash\": \"" << jsonEscape(configHash) << "\",\n";
    os << in2 << "\"git_describe\": \"" << jsonEscape(gitDescribe())
       << "\",\n";
    os << in2 << "\"build_type\": \"" << jsonEscape(buildType()) << "\",\n";
    os << in2 << "\"compiler\": \"" << jsonEscape(compiler()) << "\",\n";
    os << in2 << "\"build_flags\": \"" << jsonEscape(buildFlags())
       << "\",\n";
    os << in2 << "\"host\": \"" << jsonEscape(hostDescription()) << "\",\n";
    for (const auto &[key, value] : extras)
        os << in2 << "\"" << jsonEscape(key) << "\": " << value << ",\n";
    os << in2 << "\"phases\": ";
    if (profiler) {
        profiler->writePhasesJson(os);
    } else {
        os << "{}";
    }
    os << "\n" << indent << "}";
}

const char *
gitDescribe()
{
    return CSD_BUILD_GIT_DESCRIBE;
}

const char *
buildType()
{
    return CSD_BUILD_TYPE;
}

const char *
compiler()
{
    return CSD_BUILD_COMPILER;
}

const char *
buildFlags()
{
    return CSD_BUILD_FLAGS;
}

const std::string &
hostDescription()
{
    static const std::string desc = [] {
        std::ostringstream os;
#ifdef __unix__
        char host[256] = "unknown";
        if (gethostname(host, sizeof(host)) == 0)
            host[sizeof(host) - 1] = '\0';
        os << host;
#else
        os << "unknown";
#endif
        os << ", " << std::thread::hardware_concurrency()
           << " hardware threads";
#ifdef __unix__
        struct utsname uts;
        if (uname(&uts) == 0)
            os << ", " << uts.sysname << " " << uts.release << " "
               << uts.machine;
#endif
        return os.str();
    }();
    return desc;
}

} // namespace obs
} // namespace csd

/**
 * @file
 * Run-provenance manifests.
 *
 * Every stats dump and bench JSON sidecar carries a "manifest" member
 * answering "what produced this file?": a hash of the run
 * configuration, the git revision and build flags the binary was
 * compiled from, the host it ran on, harness extras (seed, translator
 * epoch), and host wall-time phases from the self-profiler. Two runs
 * that should be comparable have equal config_hash; everything except
 * "phases" is deterministic for a fixed build + host + configuration,
 * which is what lets scripts/check_sidecar_determinism.py demand
 * byte-identical sidecars across --jobs settings.
 *
 * Schema (schema_version 1):
 *   "manifest": {
 *     "schema_version": 1,
 *     "config_hash": "0x<fnv1a64 of the run configuration>",
 *     "git_describe": "...", "build_type": "...",
 *     "compiler": "...", "build_flags": "...",
 *     "host": "...",
 *     ...harness extras (e.g. "seed", "translator_epoch")...,
 *     "phases": {"total": seconds, "<phase>": seconds, ...}
 *   }
 */

#ifndef CSD_OBS_MANIFEST_HH
#define CSD_OBS_MANIFEST_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace csd
{

class HostProfiler;

namespace obs
{

/** FNV-1a 64-bit over @p s, continuing from @p h. */
constexpr std::uint64_t
fnv1a64(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Order-sensitive hasher over (key, value) configuration pairs.
 * Feed it everything that defines the run's inputs — and nothing that
 * doesn't (no wall time, no --jobs, no output paths) — so equal hashes
 * mean "comparable runs".
 */
class ConfigHasher
{
  public:
    ConfigHasher &add(std::string_view key, std::string_view value);
    ConfigHasher &add(std::string_view key, double value);

    /** Integral values of any width/signedness hash as their decimal
        rendering (bool as 0/1), so callers need no casts. */
    template <typename T>
        requires std::is_integral_v<T>
    ConfigHasher &add(std::string_view key, T value)
    {
        const std::string s = std::to_string(value);
        return add(key, std::string_view(s));
    }

    std::uint64_t value() const { return h_; }

    /** "0x" + 16 lowercase hex digits. */
    std::string hex() const;

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/** One run's provenance record; see the file comment for the schema. */
struct Manifest
{
    static constexpr int schemaVersion = 1;

    std::string configHash = "0x0";

    /** Extra members in emit order: key -> rendered JSON value. */
    std::vector<std::pair<std::string, std::string>> extras;

    /** Add a string-valued extra (quoted and escaped on write). */
    void note(std::string key, std::string_view string_value);

    /** Add a pre-rendered JSON value (number, bool, object). */
    void noteRaw(std::string key, std::string json_value);

    void note(std::string key, std::uint64_t value);
    void note(std::string key, double value);

    /**
     * Emit `"manifest": {...}` as one JSON object member (no trailing
     * comma or newline). @p indent prefixes the member itself; nested
     * members indent two further spaces. @p profiler supplies the
     * wall-time phases ("total" is always present; a null profiler
     * yields an empty phases object).
     */
    void write(std::ostream &os, const std::string &indent,
               const HostProfiler *profiler) const;
};

// --- build/host provenance (values baked at configure time) --------------

const char *gitDescribe();
const char *buildType();
const char *compiler();
const char *buildFlags();

/** "hostname, N hardware threads, sysname release machine". */
const std::string &hostDescription();

} // namespace obs
} // namespace csd

#endif // CSD_OBS_MANIFEST_HH

/**
 * @file
 * Host self-profiler: attributes the simulator's *host* wall-clock
 * time (not simulated cycles) to coarse phases — translation,
 * flow-cache service, functional execution, pipeline timing, memory
 * modeling, stat/sampling overhead — so "why is this experiment slow
 * to run?" is answerable from the manifest of any stats dump or bench
 * sidecar without rerunning under perf.
 *
 * Off by default: a disabled profiler costs one branch per
 * instrumented scope and never reads the clock. Enable per
 * observability context with CSD_HOST_PROFILE=1 (inherited by child
 * contexts) or HostProfiler::setEnabled().
 */

#ifndef CSD_OBS_HOST_PROFILER_HH
#define CSD_OBS_HOST_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>

namespace csd
{

/** Host wall-clock phases (one accumulator each). */
enum class HostPhase : unsigned
{
    Translate,     //!< decode/translation (uncached flows)
    FlowCache,     //!< predecoded-flow cache probes and fills
    Execute,       //!< functional execution
    Pipeline,      //!< detailed front-end/back-end timing
    Memory,        //!< cache-only memory modeling
    StatOverhead,  //!< interval sampling + stat maintenance
    ChannelMonitor,  //!< per-set channel telemetry exports
    Superblock,    //!< superblock fast path: build + threaded execution
    Other,         //!< instrumented but unclassified
    NumPhases,
};

/** Per-context accumulator of host wall-clock time by phase. */
class HostProfiler
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Starts the "total" clock; phase attribution stays off. */
    HostProfiler() : epoch_(Clock::now()) {}

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Add @p seconds to @p phase (Scope does this automatically). */
    void add(HostPhase phase, double seconds)
    {
        seconds_[static_cast<unsigned>(phase)] += seconds;
    }

    /** Accumulated seconds attributed to @p phase. */
    double seconds(HostPhase phase) const
    {
        return seconds_[static_cast<unsigned>(phase)];
    }

    /** Wall seconds since construction (ticks whether enabled or not). */
    double totalSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - epoch_).count();
    }

    /**
     * RAII phase attribution. Construction on a disabled profiler is
     * one branch; nesting is allowed but time is attributed to every
     * open scope (keep instrumented scopes disjoint on hot paths).
     */
    class Scope
    {
      public:
        Scope(HostProfiler &profiler, HostPhase phase)
            : profiler_(profiler.enabled_ ? &profiler : nullptr),
              phase_(phase)
        {
            if (profiler_)
                start_ = Clock::now();
        }

        ~Scope()
        {
            if (profiler_) {
                profiler_->add(
                    phase_,
                    std::chrono::duration<double>(Clock::now() - start_)
                        .count());
            }
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HostProfiler *profiler_;
        HostPhase phase_;
        Clock::time_point start_;
    };

    /**
     * Emit the manifest "phases" object value ({"total": s, ...}; no
     * surrounding key). Attribution members appear only when the
     * profiler is enabled, so disabled runs stay byte-stable modulo
     * the total.
     */
    void writePhasesJson(std::ostream &os) const;

    static const char *phaseName(HostPhase phase);

  private:
    bool enabled_ = false;
    double seconds_[static_cast<unsigned>(HostPhase::NumPhases)] = {};
    Clock::time_point epoch_;
};

} // namespace csd

#endif // CSD_OBS_HOST_PROFILER_HH

/**
 * @file
 * Per-simulation observability contexts.
 *
 * An ObservabilityContext owns every piece of observability state that
 * used to be process-global: the event tracer (common/trace.hh), the
 * stats-detail gate, the lifecycle-trace configuration, the log sink,
 * and the host self-profiler. Each Simulation (and each Duo) holds
 * exactly one context, so N simulations in one process — e.g. the
 * parallel bench runner's workers — record independent traces and
 * stats with no shared rings, no serial-context asserts, and no
 * "tracing forces --jobs 1" clamps.
 *
 * Binding: a context attaches to the *thread* running its simulation
 * (bindToThread()); the CSD_TRACE fast path, statsDetailEnabled(), and
 * warn()/inform() then route through the bound context via
 * thread-locals. Simulation::step() re-binds lazily, so moving a
 * simulation between worker threads is safe as long as it runs on one
 * thread at a time.
 *
 * Configuration inheritance: a new context copies its trace mask, ring
 * capacity, stats-detail flag, lifecycle config, and profiler
 * enablement from the context bound to the constructing thread
 * (ultimately from the process-default context, which reads CSD_TRACE,
 * CSD_TRACE_CAPACITY, CSD_LIFECYCLE*, CSD_STATS_DETAIL, and
 * CSD_HOST_PROFILE). Environment-driven workflows therefore keep
 * working unchanged — every simulation a process creates observes the
 * same env knobs, just into private buffers.
 *
 * Flush-on-exit: live contexts sit in a registry flushed from
 * std::atexit and from SIGINT/SIGTERM, so an interrupted run still
 * writes loadable (truncated) Chrome-trace and Kanata/O3PipeView
 * files. CSD_TRACE_FILE may contain "%c", replaced by the context id,
 * to give each simulation its own trace file; a bare path is written
 * by every exporting context in turn (last writer wins), matching the
 * historical single-simulation behavior.
 */

#ifndef CSD_OBS_CONTEXT_HH
#define CSD_OBS_CONTEXT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"
#include "obs/host_profiler.hh"

namespace csd
{

/**
 * Expand every "%c" in @p path to @p context_id. The shared helper
 * behind all per-context export paths (Chrome trace, lifecycle ring,
 * channel-monitor heatmaps) — any new export knob must route through
 * this, not its own single-occurrence find/replace.
 */
std::string expandContextPath(std::string path, unsigned context_id);

/** Per-simulation owner of tracing, stats, logging, profiling state. */
class ObservabilityContext
{
  public:
    /** Lifecycle-tracer (cpu/lifecycle.hh) arming, env- or API-set. */
    struct LifecycleConfig
    {
        bool enabled = false;
        std::size_t capacity = 1u << 16;
        std::string exportPath;  //!< empty = no export at teardown
    };

    /** Channel-monitor (memory/set_monitor.hh) arming, env- or API-set. */
    struct ChannelMonitorConfig
    {
        bool enabled = false;
        std::uint64_t heatmapInterval = 4096;
        std::string exportPath;  //!< "%c"-expandable base; empty = none
    };

    /**
     * A context inheriting its configuration from the context bound to
     * the constructing thread (the process-default context if none).
     */
    ObservabilityContext();

    /** As above with a human-readable name (log prefix, trace files). */
    explicit ObservabilityContext(std::string name);

    /**
     * Unbinds (rebinding the process-default context if bound on the
     * destroying thread), exports armed trace files, and leaves the
     * flush registry. Destroy on the thread that last ran the owning
     * simulation, or after worker threads have finished with it.
     */
    ~ObservabilityContext();

    ObservabilityContext(const ObservabilityContext &) = delete;
    ObservabilityContext &operator=(const ObservabilityContext &) = delete;

    // --- process-wide access ----------------------------------------------

    /**
     * The process-default context (never destroyed). Wraps the legacy
     * globals: TraceManager::instance() and the CSD_STATS_DETAIL
     * process flag. Code that predates contexts observes exactly this
     * context's state.
     */
    static ObservabilityContext &process();

    /** The context bound to the calling thread, or null. */
    static ObservabilityContext *currentOrNull();

    /** The bound context, binding process() first if none is bound. */
    static ObservabilityContext &current();

    // --- binding ----------------------------------------------------------

    /** Route this thread's trace/stats/log fast paths through here. */
    void bindToThread();

    bool boundToThisThread() const { return currentOrNull() == this; }

    // --- identity ---------------------------------------------------------

    /** Process-unique id (0 = the process-default context). */
    unsigned id() const { return id_; }

    const std::string &name() const { return name_; }

    // --- owned observability state ----------------------------------------

    TraceManager &tracer() { return *tracer_; }
    const TraceManager &tracer() const { return *tracer_; }

    bool statsDetail() const { return *statsDetailPtr_; }
    void setStatsDetail(bool on) { *statsDetailPtr_ = on; }

    logging_detail::LogSink &logSink() { return sink_; }

    HostProfiler &profiler() { return profiler_; }
    const HostProfiler &profiler() const { return profiler_; }

    const LifecycleConfig &lifecycleConfig() const { return lifecycle_; }
    void setLifecycleConfig(LifecycleConfig config)
    {
        lifecycle_ = std::move(config);
    }

    const ChannelMonitorConfig &channelMonitorConfig() const
    {
        return channelMonitor_;
    }
    void setChannelMonitorConfig(ChannelMonitorConfig config)
    {
        channelMonitor_ = std::move(config);
    }

    // --- trace export / flushing ------------------------------------------

    /**
     * Arm a Chrome-trace export at destruction/flush ("%c" in the path
     * expands to the context id). Inherited from CSD_TRACE_FILE for
     * non-default contexts; the default context's tracer is exported
     * by the legacy atexit hook in trace.cc instead.
     */
    void setTraceExportPath(std::string path)
    {
        traceExportPath_ = std::move(path);
    }

    const std::string &traceExportPath() const { return traceExportPath_; }

    /** traceExportPath() with "%c" expanded to this context's id. */
    std::string resolvedTraceExportPath() const;

    /**
     * Register a callback run by flushNow() (owner teardown, atexit,
     * SIGINT/SIGTERM). Simulations register their lifecycle-ring
     * export here so an interrupted run still writes a loadable file.
     * Returns a token for removeFlushHook(); remove before the state
     * the hook touches dies.
     */
    std::uint64_t addFlushHook(std::function<void()> hook);
    void removeFlushHook(std::uint64_t token);

    /**
     * Write everything armed on this context now: the Chrome trace (if
     * an export path is set and events were recorded) and all
     * registered flush hooks. Idempotent; file writes serialize on a
     * process-wide mutex.
     */
    void flushNow();

    /**
     * Flush every live context (the atexit/signal path). @p
     * from_signal uses try-locks and skips contexts it cannot safely
     * reach instead of deadlocking on a lock the interrupted thread
     * holds.
     */
    static void flushAllContexts(bool from_signal = false);

    /**
     * The process-wide mutex serializing observability file exports.
     * Hold it when writing a trace/lifecycle file outside flushNow()
     * (e.g. Simulation's teardown export) so parallel simulations
     * sharing an output path do not interleave writes.
     */
    static std::mutex &exportLock();

  private:
    struct ProcessTag
    {
    };

    /** The process-default context: wraps globals, reads the env. */
    explicit ObservabilityContext(ProcessTag);

    void registerSelf();

    unsigned id_;
    std::string name_;

    std::unique_ptr<TraceManager> ownedTracer_;  //!< null for process()
    TraceManager *tracer_;

    bool statsDetailValue_ = false;  //!< storage for non-default contexts
    bool *statsDetailPtr_;           //!< &statsDetailValue_ or the global

    logging_detail::LogSink sink_;
    HostProfiler profiler_;
    LifecycleConfig lifecycle_;
    ChannelMonitorConfig channelMonitor_;

    std::string traceExportPath_;

    std::vector<std::pair<std::uint64_t, std::function<void()>>> hooks_;
    std::uint64_t nextHookToken_ = 1;
};

} // namespace csd

#endif // CSD_OBS_CONTEXT_HH

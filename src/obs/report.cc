#include "obs/report.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace csd
{
namespace obs
{

namespace
{

std::string
lower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

void
flattenInto(const minijson::JsonValue &v, const std::string &prefix,
            bool top_level, std::map<std::string, double> &out)
{
    using Kind = minijson::JsonValue::Kind;
    switch (v.kind) {
      case Kind::Number:
        if (!prefix.empty())
            out[prefix] = v.number;
        return;
      case Kind::Object: {
        // {"value": N, "desc": "..."} stat leaves collapse to N.
        if (v.has("value") && v.at("value").isNumber() &&
            v.fields.size() <= 2 &&
            (v.fields.size() == 1 || v.has("desc"))) {
            if (!prefix.empty())
                out[prefix] = v.at("value").number;
            return;
        }
        for (const auto &[key, child] : v.fields) {
            if (top_level && key == "manifest")
                continue;
            // Stat-tree child groups splice their names directly into
            // the path instead of a "groups.<index>" segment.
            if (key == "groups" && child->isArray()) {
                bool all_named = !child->items.empty();
                for (const auto &item : child->items)
                    all_named = all_named && item->isObject() &&
                                item->has("name") &&
                                item->at("name").isString();
                if (all_named) {
                    for (const auto &item : child->items) {
                        const std::string &name = item->at("name").str;
                        flattenInto(*item,
                                    prefix.empty() ? name
                                                   : prefix + "." + name,
                                    false, out);
                    }
                    continue;
                }
            }
            flattenInto(*child,
                        prefix.empty() ? key : prefix + "." + key, false,
                        out);
        }
        return;
      }
      case Kind::Array: {
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            flattenInto(*v.items[i],
                        prefix + "[" + std::to_string(i) + "]", false,
                        out);
        }
        return;
      }
      default:
        return;  // strings, bools, nulls are not diffable results
    }
}

} // namespace

void
flattenNumeric(const minijson::JsonValue &root, const std::string &prefix,
               std::map<std::string, double> &out)
{
    // A stat-tree root carries its own "name" ("sim"); drop it from
    // paths the way child "groups" names are spliced, keeping the
    // root's members at the top level.
    flattenInto(root, prefix, /*top_level=*/true, out);
}

std::string
classifyKey(const std::string &key)
{
    const std::string k = lower(key);
    if (k.find("cpi") != std::string::npos)
        return "cpi";
    if (k.find("energy") != std::string::npos ||
        k.find("_nj") != std::string::npos ||
        k.find("leakage") != std::string::npos)
        return "energy";
    if (k.find("channel") != std::string::npos ||
        k.find("leak") != std::string::npos ||
        k.find("stealth") != std::string::npos)
        return "channel";
    return "other";
}

std::vector<DiffRow>
diffStats(const std::map<std::string, double> &old_stats,
          const std::map<std::string, double> &new_stats)
{
    std::vector<DiffRow> rows;
    for (const auto &[key, old_value] : old_stats) {
        DiffRow row;
        row.key = key;
        row.kind = classifyKey(key);
        row.oldValue = old_value;
        auto it = new_stats.find(key);
        if (it == new_stats.end()) {
            row.onlyOld = true;
            row.delta = -old_value;
            row.pct = old_value != 0.0 ? -100.0 : 0.0;
        } else {
            row.newValue = it->second;
            row.delta = row.newValue - row.oldValue;
            if (row.delta == 0.0)
                continue;
            row.pct = row.oldValue != 0.0
                          ? 100.0 * row.delta / std::fabs(row.oldValue)
                          : 0.0;
        }
        rows.push_back(std::move(row));
    }
    for (const auto &[key, new_value] : new_stats) {
        if (old_stats.count(key))
            continue;
        DiffRow row;
        row.key = key;
        row.kind = classifyKey(key);
        row.newValue = new_value;
        row.onlyNew = true;
        row.delta = new_value;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const DiffRow &a, const DiffRow &b) {
                  const double da = std::fabs(a.delta);
                  const double db = std::fabs(b.delta);
                  if (da != db)
                      return da > db;
                  const double pa = std::fabs(a.pct);
                  const double pb = std::fabs(b.pct);
                  if (pa != pb)
                      return pa > pb;
                  return a.key < b.key;  // deterministic order
              });
    return rows;
}

void
writeReport(std::ostream &os, const std::vector<DiffRow> &rows,
            std::size_t top, const std::string &kind)
{
    std::size_t shown = 0;
    std::size_t matched = 0;
    char buf[64];
    os << "  kind     old             new             delta        "
          "%       key\n";
    for (const DiffRow &row : rows) {
        if (!kind.empty() && row.kind != kind)
            continue;
        ++matched;
        if (top != 0 && shown >= top)
            continue;
        ++shown;
        os << "  " << row.kind;
        for (std::size_t i = row.kind.size(); i < 9; ++i)
            os << ' ';
        std::snprintf(buf, sizeof(buf), "%-15.6g %-15.6g %+-12.6g ",
                      row.oldValue, row.newValue, row.delta);
        os << buf;
        if (row.onlyOld)
            os << "gone    ";
        else if (row.onlyNew)
            os << "new     ";
        else {
            std::snprintf(buf, sizeof(buf), "%+-7.1f%%", row.pct);
            os << buf;
        }
        os << " " << row.key << "\n";
    }
    if (matched == 0) {
        os << "  (no differing statistics"
           << (kind.empty() ? "" : " of kind '" + kind + "'") << ")\n";
    } else if (shown < matched) {
        os << "  ... " << (matched - shown) << " more row"
           << (matched - shown == 1 ? "" : "s")
           << " (raise --top to see them)\n";
    }
}

namespace
{

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
writeReportJson(std::ostream &os, const std::string &old_path,
                const std::string &new_path,
                const std::vector<DiffRow> &rows, const std::string &kind)
{
    os << "{\"schema_version\": 1, \"old\": ";
    writeEscaped(os, old_path);
    os << ", \"new\": ";
    writeEscaped(os, new_path);
    if (!kind.empty()) {
        os << ", \"kind\": ";
        writeEscaped(os, kind);
    }

    std::size_t matched = 0;
    for (const DiffRow &row : rows)
        matched += kind.empty() || row.kind == kind;
    os << ", \"differing\": " << matched << ", \"rows\": [";

    bool first = true;
    for (const DiffRow &row : rows) {
        if (!kind.empty() && row.kind != kind)
            continue;
        os << (first ? "" : ", ") << "{\"key\": ";
        writeEscaped(os, row.key);
        os << ", \"kind\": \"" << row.kind << "\", \"old\": "
           << row.oldValue << ", \"new\": " << row.newValue
           << ", \"delta\": " << row.delta << ", \"pct\": " << row.pct
           << ", \"status\": \""
           << (row.onlyOld ? "gone" : row.onlyNew ? "new" : "changed")
           << "\"}";
        first = false;
    }
    os << "]}\n";
}

std::map<std::string, double>
loadFlattened(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream text;
    text << file.rdbuf();
    minijson::JsonPtr root = minijson::parseJson(text.str());
    std::map<std::string, double> out;
    flattenNumeric(*root, "", out);
    return out;
}

} // namespace obs
} // namespace csd

#include "obs/context.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>

#include "common/env.hh"
#include "common/stats.hh"

namespace csd
{

namespace
{

thread_local ObservabilityContext *tlsContext = nullptr;

std::atomic<unsigned> nextContextId{0};

/**
 * Live contexts, for the atexit/signal flush sweep. Leaked on purpose
 * (like the process context): the atexit flush runs during static
 * destruction, after function-local statics constructed later would
 * already be gone.
 */
std::mutex &
registryMutex()
{
    static std::mutex *m = new std::mutex;
    return *m;
}

std::vector<ObservabilityContext *> &
registry()
{
    static auto *contexts = new std::vector<ObservabilityContext *>;
    return *contexts;
}

/** Serializes all observability file exports (trace + flush hooks). */
std::mutex &
exportMutex()
{
    return ObservabilityContext::exportLock();
}

void
signalFlush(int sig)
{
    ObservabilityContext::flushAllContexts(/*from_signal=*/true);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

void
atexitFlush()
{
    ObservabilityContext::flushAllContexts();
}

void
installFlushHandlers()
{
    static std::once_flag once;
    std::call_once(once, [] {
        std::atexit(atexitFlush);
        for (int sig : {SIGINT, SIGTERM}) {
            // Only claim signals nobody else handles: keep SIG_IGN
            // (e.g. nohup) and user-installed handlers intact.
            auto prev = std::signal(sig, &signalFlush);
            if (prev != SIG_DFL && prev != SIG_ERR)
                std::signal(sig, prev);
        }
    });
}

} // namespace

std::string
expandContextPath(std::string path, unsigned context_id)
{
    const std::string id = std::to_string(context_id);
    std::size_t pos = 0;
    while ((pos = path.find("%c", pos)) != std::string::npos) {
        path.replace(pos, 2, id);
        pos += id.size();
    }
    return path;
}

ObservabilityContext::ObservabilityContext(ProcessTag)
    : id_(nextContextId++),
      name_("process"),
      tracer_(&TraceManager::instance()),
      statsDetailPtr_(&stats_detail::processDefault)
{
    // The process-default context wraps the legacy globals and is the
    // root all other contexts inherit from; parse the env knobs that
    // used to be read ad hoc by Simulation.
    const char *lc_env = std::getenv("CSD_LIFECYCLE");
    const char *lc_file = std::getenv("CSD_LIFECYCLE_FILE");
    lifecycle_.enabled = (lc_env && *lc_env && *lc_env != '0') ||
                         (lc_file && *lc_file);
    if (const char *cap = std::getenv("CSD_LIFECYCLE_CAPACITY"))
        lifecycle_.capacity =
            parsePositiveSetting("CSD_LIFECYCLE_CAPACITY", cap);
    if (lc_file && *lc_file)
        lifecycle_.exportPath = lc_file;

    const char *prof = std::getenv("CSD_HOST_PROFILE");
    profiler_.setEnabled(prof && *prof && *prof != '0');

    const char *cm_env = std::getenv("CSD_CHANNEL_MONITOR");
    const char *cm_file = std::getenv("CSD_CHANNEL_HEATMAP");
    channelMonitor_.enabled = (cm_env && *cm_env && *cm_env != '0') ||
                              (cm_file && *cm_file);
    if (const char *ival = std::getenv("CSD_CHANNEL_MONITOR_INTERVAL"))
        channelMonitor_.heatmapInterval =
            parsePositiveSetting("CSD_CHANNEL_MONITOR_INTERVAL", ival);
    if (cm_file && *cm_file)
        channelMonitor_.exportPath = cm_file;

    // The legacy atexit hook in trace.cc exports this context's tracer
    // (TraceManager::instance()), so traceExportPath_ stays empty here;
    // child contexts pick CSD_TRACE_FILE up themselves.
    registerSelf();
}

ObservabilityContext::ObservabilityContext() : ObservabilityContext(std::string())
{
}

ObservabilityContext::ObservabilityContext(std::string name)
{
    ObservabilityContext *parent = currentOrNull();
    if (!parent)
        parent = &process();

    id_ = nextContextId++;
    const bool named = !name.empty();
    name_ = named ? std::move(name) : "ctx" + std::to_string(id_);

    ownedTracer_ = std::make_unique<TraceManager>(parent->tracer().capacity());
    ownedTracer_->setMask(parent->tracer().mask());
    tracer_ = ownedTracer_.get();

    statsDetailValue_ = parent->statsDetail();
    statsDetailPtr_ = &statsDetailValue_;

    lifecycle_ = parent->lifecycle_;
    channelMonitor_ = parent->channelMonitor_;
    profiler_.setEnabled(parent->profiler_.enabled());

    // Named contexts label their log output; anonymous ones keep the
    // legacy unprefixed format (single-simulation runs stay stable).
    if (named)
        sink_.label = name_;

    if (const char *path = std::getenv("CSD_TRACE_FILE"))
        if (*path)
            traceExportPath_ = path;

    registerSelf();
}

ObservabilityContext::~ObservabilityContext()
{
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto &contexts = registry();
        for (auto it = contexts.begin(); it != contexts.end(); ++it) {
            if (*it == this) {
                contexts.erase(it);
                break;
            }
        }
    }
    flushNow();
    if (currentOrNull() == this)
        process().bindToThread();
}

void
ObservabilityContext::registerSelf()
{
    installFlushHandlers();
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().push_back(this);
}

ObservabilityContext &
ObservabilityContext::process()
{
    // Leaked on purpose: must outlive the atexit flush sweep and any
    // static-destruction-order dependency.
    static ObservabilityContext *ctx = new ObservabilityContext(ProcessTag{});
    return *ctx;
}

ObservabilityContext *
ObservabilityContext::currentOrNull()
{
    return tlsContext;
}

ObservabilityContext &
ObservabilityContext::current()
{
    if (!tlsContext)
        process().bindToThread();
    return *tlsContext;
}

void
ObservabilityContext::bindToThread()
{
    tlsContext = this;
    tracer_->bindToThread();
    stats_detail::enabled = statsDetailPtr_;
    logging_detail::bindThreadSink(&sink_);
}

std::string
ObservabilityContext::resolvedTraceExportPath() const
{
    return expandContextPath(traceExportPath_, id_);
}

std::uint64_t
ObservabilityContext::addFlushHook(std::function<void()> hook)
{
    const std::uint64_t token = nextHookToken_++;
    hooks_.emplace_back(token, std::move(hook));
    return token;
}

void
ObservabilityContext::removeFlushHook(std::uint64_t token)
{
    for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
        if (it->first == token) {
            hooks_.erase(it);
            return;
        }
    }
}

void
ObservabilityContext::flushNow()
{
    std::lock_guard<std::mutex> lock(exportMutex());
    if (!traceExportPath_.empty() && tracer_->size() > 0)
        tracer_->exportChromeTrace(resolvedTraceExportPath());
    for (auto &[token, hook] : hooks_)
        hook();
}

std::mutex &
ObservabilityContext::exportLock()
{
    // Leaked: flushed-at-exit contexts lock this after static
    // destruction has begun.
    static std::mutex *m = new std::mutex;
    return *m;
}

void
ObservabilityContext::flushAllContexts(bool from_signal)
{
    if (from_signal) {
        // Best effort from a signal handler: skip anything another
        // thread holds rather than deadlocking mid-flush.
        if (!registryMutex().try_lock())
            return;
        std::lock_guard<std::mutex> lock(registryMutex(), std::adopt_lock);
        for (ObservabilityContext *ctx : registry()) {
            if (!exportMutex().try_lock())
                continue;
            std::lock_guard<std::mutex> exp(exportMutex(), std::adopt_lock);
            if (!ctx->traceExportPath_.empty() && ctx->tracer_->size() > 0)
                ctx->tracer_->exportChromeTrace(
                    ctx->resolvedTraceExportPath());
            for (auto &[token, hook] : ctx->hooks_)
                hook();
        }
        return;
    }
    std::lock_guard<std::mutex> lock(registryMutex());
    for (ObservabilityContext *ctx : registry())
        ctx->flushNow();
}

} // namespace csd

/**
 * @file
 * A/B diffing of stats dumps and bench JSON sidecars (the csd-report
 * CLI's engine, kept as a library so tests can drive it directly).
 *
 * Both artifact kinds flatten to dotted numeric-leaf paths:
 *   - stat trees: child groups splice their "name" into the path and
 *     {"value": ..., "desc": ...} leaves collapse to the value, so a
 *     counter reads "frontend.slots_legacy", not
 *     "groups[0].counters.slots_legacy.value";
 *   - sidecars: "stats.<key>" plus table cells by index.
 * The "manifest" member is provenance, not results, and is excluded.
 *
 * diffStats() pairs the two flat maps and ranks rows by absolute
 * delta (ties by percentage), so the biggest mover — the injected
 * regression, the optimization win — is always row one. Keys are
 * classified (cpi / energy / channel / other) for filtering.
 */

#ifndef CSD_OBS_REPORT_HH
#define CSD_OBS_REPORT_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace csd
{
namespace obs
{

/** One diffed statistic. */
struct DiffRow
{
    std::string key;
    std::string kind;  //!< "cpi", "energy", "channel", or "other"
    double oldValue = 0.0;
    double newValue = 0.0;
    double delta = 0.0;  //!< newValue - oldValue
    double pct = 0.0;    //!< 100 * delta / |oldValue| (0 when old == 0)
    bool onlyOld = false;  //!< key vanished in the new artifact
    bool onlyNew = false;  //!< key first appears in the new artifact
};

/**
 * Flatten @p root to dotted-path -> numeric-leaf entries in @p out
 * (see the file comment for the path rules). @p prefix seeds the
 * paths; top-level "manifest" members are skipped.
 */
void flattenNumeric(const minijson::JsonValue &root,
                    const std::string &prefix,
                    std::map<std::string, double> &out);

/** Classify a flattened key: "cpi", "energy", "channel", or "other". */
std::string classifyKey(const std::string &key);

/**
 * Pair @p old_stats and @p new_stats, dropping keys whose value is
 * unchanged, and rank by |delta| descending (ties by |pct|).
 */
std::vector<DiffRow> diffStats(
    const std::map<std::string, double> &old_stats,
    const std::map<std::string, double> &new_stats);

/**
 * Human-readable report of the top @p top rows (0 = all), optionally
 * restricted to one @p kind ("" = all kinds).
 */
void writeReport(std::ostream &os, const std::vector<DiffRow> &rows,
                 std::size_t top, const std::string &kind = "");

/**
 * Machine-readable report: every row (no --top truncation), same
 * @p kind filter as writeReport. Schema:
 *   {"schema_version": 1, "old": ..., "new": ...,
 *    "differing": N, "rows": [{"key", "kind", "old", "new",
 *    "delta", "pct", "status": "changed"|"gone"|"new"}]}
 */
void writeReportJson(std::ostream &os, const std::string &old_path,
                     const std::string &new_path,
                     const std::vector<DiffRow> &rows,
                     const std::string &kind = "");

/** Load + parse + flatten a JSON artifact file; throws on failure. */
std::map<std::string, double> loadFlattened(const std::string &path);

} // namespace obs
} // namespace csd

#endif // CSD_OBS_REPORT_HH

#include "csd/mcu.hh"

#include <array>

#include "common/logging.hh"
#include "uop/translate.hh"

namespace csd
{

std::uint32_t
mcuChecksum(const McuBlob &blob)
{
    // FNV-1a over a canonical serialization of the data part.
    std::uint32_t hash = 2166136261u;
    auto mix = [&hash](std::uint64_t value) {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= static_cast<std::uint8_t>(value >> (8 * i));
            hash *= 16777619u;
        }
    };
    for (const McuEntry &entry : blob.entries) {
        mix(static_cast<std::uint64_t>(entry.targetOpcode));
        mix(static_cast<std::uint64_t>(entry.placement));
        for (const MacroOp &op : entry.nativeCode) {
            mix(static_cast<std::uint64_t>(op.opcode));
            mix(static_cast<std::uint64_t>(op.dst));
            mix(static_cast<std::uint64_t>(op.src1));
            mix(static_cast<std::uint64_t>(op.imm));
            mix(static_cast<std::uint64_t>(op.mem.disp));
        }
    }
    return hash;
}

void
sealMcu(McuBlob &blob)
{
    blob.header.checksum = mcuChecksum(blob);
}

McuEngine::McuEngine() : stats_("mcu")
{
    stats_.addCounter("updates_applied", &updatesApplied_,
                      "microcode updates accepted");
    stats_.addCounter("updates_rejected", &updatesRejected_,
                      "microcode updates failing verification");
    stats_.addCounter("uops_installed", &uopsInstalled_,
                      "custom uops in the microcode engine");
    stats_.addCounter("uops_optimized_away", &uopsOptimizedAway_,
                      "uops removed by the auto-translation optimizer");
}

namespace
{

/**
 * Remap every architectural register in @p uops onto decoder
 * temporaries: GPRs in first-use order onto t0..t5 (t6/t7 are reserved
 * for decoys), XMMs onto vt0..vt3. Flag writes are stripped — a custom
 * translation running without allowArchWrites must not clobber RFLAGS
 * either, and the decoder has no shadow flags register to remap onto.
 */
bool
remapToTemps(UopVec &uops, std::string *error)
{
    constexpr unsigned availInt = numIntTemps - 2;
    constexpr unsigned availVec = numVecTemps;
    std::array<int, numGprs> intMap;
    std::array<int, numXmms> vecMap;
    intMap.fill(-1);
    vecMap.fill(-1);
    unsigned nextInt = 0;
    unsigned nextVec = 0;

    auto remap = [&](RegId &reg) -> bool {
        if (!reg.valid())
            return true;
        if (reg.cls == RegClass::Int && reg.idx < numGprs) {
            if (intMap[reg.idx] < 0) {
                if (nextInt >= availInt)
                    return false;
                intMap[reg.idx] = static_cast<int>(nextInt++);
            }
            reg = intTemp(static_cast<unsigned>(intMap[reg.idx]));
        } else if (reg.cls == RegClass::Vec && reg.idx < numXmms) {
            if (vecMap[reg.idx] < 0) {
                if (nextVec >= availVec)
                    return false;
                vecMap[reg.idx] = static_cast<int>(nextVec++);
            }
            reg = vecTemp(static_cast<unsigned>(vecMap[reg.idx]));
        }
        return true;
    };

    for (Uop &uop : uops) {
        if (!remap(uop.dst) || !remap(uop.src1) || !remap(uop.src2) ||
            !remap(uop.src3)) {
            if (error)
                *error = "update uses more registers than the decoder "
                         "has temporaries";
            return false;
        }
        uop.writesFlags = false;
    }
    return true;
}

/**
 * The auto-translation optimizer: conservative dead-code elimination
 * over decoder temporaries (a stand-in for the front end's compaction
 * pass). A temp definition is removed only when it is overwritten
 * before being read — temps live to the end of the flow are kept,
 * since instrumentation updates read them out-of-band.
 */
unsigned
eliminateDeadTemps(UopVec &uops)
{
    unsigned removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < uops.size(); ++i) {
            const Uop &uop = uops[i];
            if (!uop.dst.valid() || !uop.dst.isIntTemp())
                continue;
            if (uop.isMem() || uop.isBranch() || uop.writesFlags)
                continue;
            // Removable only if overwritten before any read.
            bool overwritten_first = false;
            for (std::size_t j = i + 1; j < uops.size(); ++j) {
                const Uop &later = uops[j];
                if ((later.src1 == uop.dst) || (later.src2 == uop.dst) ||
                    (later.src3 == uop.dst)) {
                    break;  // read first: live
                }
                if (later.dst == uop.dst) {
                    overwritten_first = true;
                    break;
                }
            }
            if (overwritten_first) {
                uops.erase(uops.begin() + static_cast<std::ptrdiff_t>(i));
                ++removed;
                changed = true;
                break;
            }
        }
    }
    return removed;
}

} // namespace

bool
McuEngine::translateEntry(const McuEntry &entry, bool allow_arch_writes,
                          CustomTranslation &out, std::string *error,
                          unsigned *optimized_away) const
{
    out.placement = entry.placement;
    out.uops.clear();

    for (const MacroOp &op : entry.nativeCode) {
        if (isBranch(op.opcode)) {
            if (error)
                *error = "control transfer not allowed in custom "
                         "translations";
            return false;
        }
        if (nativelyMicrosequenced(op.opcode)) {
            if (error)
                *error = "microsequenced instructions not allowed in "
                         "custom translations";
            return false;
        }
        const UopFlow flow = translateNative(op);
        out.uops.insert(out.uops.end(), flow.uops.begin(),
                        flow.uops.end());
    }

    if (!allow_arch_writes) {
        if (!remapToTemps(out.uops, error))
            return false;
        for (const Uop &uop : out.uops) {
            if (uop.isStore()) {
                if (error)
                    *error = "memory writes require allowArchWrites in "
                             "the MCU header";
                return false;
            }
        }
    }

    const unsigned removed = eliminateDeadTemps(out.uops);
    if (optimized_away)
        *optimized_away += removed;
    return true;
}

bool
McuEngine::applyUpdate(const McuBlob &blob, std::string *error)
{
    auto reject = [&](const std::string &why) {
        if (error)
            *error = why;
        ++updatesRejected_;
        return false;
    };

    if (blob.header.signature != mcuSignature)
        return reject("bad MCU signature");
    if (!blob.header.autoTranslate)
        return reject("MCU not marked for CSD auto-translation");
    if (blob.header.checksum != mcuChecksum(blob))
        return reject("MCU integrity check failed");
    if (blob.entries.empty())
        return reject("MCU contains no translation entries");
    if (blob.header.revision <= installedRevision_)
        return reject("MCU revision downgrade rejected");

    if (prover_) {
        std::string why = "MCU rejected by admission prover";
        if (!prover_(blob, *this, &why))
            return reject(why);
    }

    // Translate everything into a staging table before installing
    // anything, and accumulate stats deltas locally: a blob whose Nth
    // entry fails must leave table and counters exactly as they were.
    std::map<MacroOpcode, CustomTranslation> staged;
    unsigned optimized_away = 0;
    for (const McuEntry &entry : blob.entries) {
        if (staged.count(entry.targetOpcode)) {
            return reject("duplicate target opcode in MCU entries");
        }
        CustomTranslation xlat;
        std::string why;
        if (!translateEntry(entry, blob.header.allowArchWrites, xlat,
                            &why, &optimized_away)) {
            return reject(why);
        }
        staged[entry.targetOpcode] = std::move(xlat);
    }

    for (auto &[opcode, xlat] : staged) {
        uopsInstalled_ += xlat.uops.size();
        table_[opcode] = std::move(xlat);
    }
    uopsOptimizedAway_ += optimized_away;
    installedRevision_ = blob.header.revision;
    ++updatesApplied_;
    return true;
}

const CustomTranslation *
McuEngine::lookup(MacroOpcode opcode) const
{
    auto it = table_.find(opcode);
    return it == table_.end() ? nullptr : &it->second;
}

void
McuEngine::clear()
{
    table_.clear();
}

} // namespace csd

/**
 * @file
 * Model-specific registers that configure context-sensitive decoding.
 *
 * Software (OS / antivirus / runtime) triggers translation modes by
 * writing these MSRs; the decoder's existing register-tracking
 * optimization observes the writes and switches context (paper §III-B).
 * The decoy address-range MSRs play the role of the paper's MTRR-like
 * registers that mark sensitive instruction and data ranges (§IV-B),
 * and five scratchpad registers hold antivirus-identified tainted PCs
 * (§VI-A).
 */

#ifndef CSD_CSD_MSR_HH
#define CSD_CSD_MSR_HH

#include <array>
#include <functional>

#include "common/addr_range.hh"
#include "common/types.hh"

namespace csd
{

/** Number of decoy address-range register pairs per kind. */
constexpr unsigned numDecoyRanges = 5;

/** Number of antivirus tainted-PC scratchpad registers. */
constexpr unsigned numTaintedPcRegs = 5;

/** MSR addresses (arbitrary model-specific numbering). */
enum class MsrAddr : std::uint32_t
{
    CsdControl = 0xc0010000,        //!< mode enable bits
    DecoyIRangeBase = 0xc0010010,   //!< 5 pairs: start/end (instruction)
    DecoyDRangeBase = 0xc0010020,   //!< 5 pairs: start/end (data)
    TaintedPcBase = 0xc0010030,     //!< 5 tainted instruction PCs
    WatchdogPeriod = 0xc0010040,    //!< stealth re-trigger period
};

/** Bits of the CsdControl MSR. */
enum CsdControlBits : std::uint64_t
{
    ctrlStealthEnable = 1ull << 0,   //!< stealth-mode translation armed
    ctrlDevectEnable = 1ull << 1,    //!< selective devectorization armed
    ctrlDiftTrigger = 1ull << 2,     //!< stealth triggered by DIFT taint
    ctrlPcRangeTrigger = 1ull << 3,  //!< stealth triggered by tainted PCs
    /** Timing-noise injection (paper §IV-E): a pseudo-random stream of
     *  NOP micro-ops skews timing-analysis attacks. */
    ctrlTimingNoise = 1ull << 4,
};

/**
 * The MSR file with register tracking: every write notifies the
 * context-sensitive decoder so a mode switch can be triggered
 * immediately (at decode granularity).
 */
class MsrFile
{
  public:
    using WriteHook = std::function<void(MsrAddr, std::uint64_t)>;

    /** Install the decoder's register-tracking hook. */
    void setWriteHook(WriteHook hook) { hook_ = std::move(hook); }

    /** Privileged wrmsr. */
    void write(MsrAddr addr, std::uint64_t value);

    /** Privileged rdmsr. */
    std::uint64_t read(MsrAddr addr) const;

    // ------------------------------------------------------------------
    // Typed convenience accessors used by system software models.
    // ------------------------------------------------------------------

    std::uint64_t control() const { return control_; }
    void setControl(std::uint64_t bits)
    {
        write(MsrAddr::CsdControl, bits);
    }

    /** Program decoy instruction range slot @p idx. */
    void setDecoyIRange(unsigned idx, const AddrRange &range);
    /** Program decoy data range slot @p idx. */
    void setDecoyDRange(unsigned idx, const AddrRange &range);
    /** Program tainted-PC scratchpad @p idx (invalidAddr clears). */
    void setTaintedPc(unsigned idx, Addr pc);
    void setWatchdogPeriod(Cycles period);

    const std::array<AddrRange, numDecoyRanges> &decoyIRanges() const
    {
        return iRanges_;
    }
    const std::array<AddrRange, numDecoyRanges> &decoyDRanges() const
    {
        return dRanges_;
    }
    const std::array<Addr, numTaintedPcRegs> &taintedPcs() const
    {
        return taintedPcs_;
    }
    Cycles watchdogPeriod() const { return watchdogPeriod_; }

  private:
    void notify(MsrAddr addr, std::uint64_t value);

    std::uint64_t control_ = 0;
    std::array<AddrRange, numDecoyRanges> iRanges_{};
    std::array<AddrRange, numDecoyRanges> dRanges_{};
    std::array<Addr, numTaintedPcRegs> taintedPcs_{
        invalidAddr, invalidAddr, invalidAddr, invalidAddr, invalidAddr};
    Cycles watchdogPeriod_ = 1000;

    WriteHook hook_;
};

} // namespace csd

#endif // CSD_CSD_MSR_HH

#include "csd/mcu_presets.hh"

#include <sstream>

#include "isa/program.hh"

namespace csd
{

McuBlob
mcuLoadInstrumentationPreset(std::uint32_t revision)
{
    McuBlob blob;
    blob.header.revision = revision;
    McuEntry entry;
    entry.targetOpcode = MacroOpcode::Load;
    entry.placement = McuPlacement::Append;
    ProgramBuilder b;
    b.addi(Gpr::Rax, 1);  // rax is remapped to a decoder temp on load
    entry.nativeCode = b.build().code();
    blob.entries.push_back(entry);
    sealMcu(blob);
    return blob;
}

McuBlob
mcuConstantTimeSweepPreset(const AddrRange &table, std::uint32_t revision)
{
    McuBlob blob;
    blob.header.revision = revision;
    ProgramBuilder b;
    // One load per cache block; a single destination register keeps
    // the remapped translation inside one decoder temporary.
    for (Addr line = blockAlign(table.start); line < table.end;
         line += cacheBlockSize) {
        b.load(Gpr::Rax, memAbs(line, MemSize::B8));
    }
    const std::vector<MacroOp> sweep = b.build().code();
    // A tainted table lookup decodes as either a plain load or a
    // micro-fused load-op (e.g. AES xors three of every four lookups
    // straight into the state word), so the sweep rides on both
    // flows — covering only Load would leave the load-op sites
    // distinguishable.
    for (MacroOpcode target : {MacroOpcode::Load, MacroOpcode::XorM}) {
        McuEntry entry;
        entry.targetOpcode = target;
        entry.placement = McuPlacement::Append;
        entry.nativeCode = sweep;
        blob.entries.push_back(entry);
    }
    sealMcu(blob);
    return blob;
}

namespace
{

constexpr const char *textMagic = "mcu-blob v1";

} // namespace

std::string
mcuBlobToText(const McuBlob &blob)
{
    std::ostringstream out;
    out << textMagic << "\n";
    const McuHeader &h = blob.header;
    out << "header " << h.signature << " " << h.revision << " "
        << (h.autoTranslate ? 1 : 0) << " " << (h.allowArchWrites ? 1 : 0)
        << " " << h.checksum << "\n";
    for (const McuEntry &entry : blob.entries) {
        out << "entry " << static_cast<unsigned>(entry.targetOpcode)
            << " " << static_cast<unsigned>(entry.placement) << " "
            << entry.nativeCode.size() << "\n";
        for (const MacroOp &op : entry.nativeCode) {
            out << "op " << static_cast<unsigned>(op.opcode) << " "
                << static_cast<int>(op.dst) << " "
                << static_cast<int>(op.src1) << " "
                << static_cast<int>(op.xdst) << " "
                << static_cast<int>(op.xsrc) << " " << op.imm << " "
                << op.imm2 << " " << static_cast<int>(op.mem.base) << " "
                << static_cast<int>(op.mem.index) << " "
                << static_cast<unsigned>(op.mem.scale) << " "
                << op.mem.disp << " "
                << static_cast<unsigned>(op.mem.size) << " "
                << (op.hasMem ? 1 : 0) << " "
                << static_cast<unsigned>(op.cond) << " " << op.target
                << " " << static_cast<unsigned>(op.width) << " " << op.pc
                << " " << static_cast<unsigned>(op.length) << "\n";
        }
    }
    return out.str();
}

bool
mcuBlobFromText(const std::string &text, McuBlob &blob, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != textMagic)
        return fail("missing mcu-blob magic line");

    McuBlob parsed;
    std::string keyword;
    if (!(in >> keyword) || keyword != "header")
        return fail("missing header line");
    unsigned auto_translate = 0;
    unsigned allow_arch = 0;
    if (!(in >> parsed.header.signature >> parsed.header.revision >>
          auto_translate >> allow_arch >> parsed.header.checksum))
        return fail("malformed header line");
    parsed.header.autoTranslate = auto_translate != 0;
    parsed.header.allowArchWrites = allow_arch != 0;

    while (in >> keyword) {
        if (keyword != "entry")
            return fail("expected entry line, got '" + keyword + "'");
        McuEntry entry;
        unsigned target = 0;
        unsigned placement = 0;
        std::size_t ops = 0;
        if (!(in >> target >> placement >> ops))
            return fail("malformed entry line");
        if (target >= static_cast<unsigned>(MacroOpcode::NumOpcodes))
            return fail("entry target opcode out of range");
        if (placement > static_cast<unsigned>(McuPlacement::Replace))
            return fail("entry placement out of range");
        entry.targetOpcode = static_cast<MacroOpcode>(target);
        entry.placement = static_cast<McuPlacement>(placement);
        for (std::size_t i = 0; i < ops; ++i) {
            if (!(in >> keyword) || keyword != "op")
                return fail("expected op line");
            MacroOp op;
            unsigned opcode = 0;
            int dst = 0, src1 = 0, xdst = 0, xsrc = 0;
            int mem_base = 0, mem_index = 0;
            unsigned mem_scale = 0, mem_size = 0, has_mem = 0;
            unsigned cond = 0, width = 0, length = 0;
            if (!(in >> opcode >> dst >> src1 >> xdst >> xsrc >> op.imm >>
                  op.imm2 >> mem_base >> mem_index >> mem_scale >>
                  op.mem.disp >> mem_size >> has_mem >> cond >>
                  op.target >> width >> op.pc >> length))
                return fail("malformed op line");
            if (opcode >= static_cast<unsigned>(MacroOpcode::NumOpcodes))
                return fail("op opcode out of range");
            op.opcode = static_cast<MacroOpcode>(opcode);
            op.dst = static_cast<Gpr>(dst);
            op.src1 = static_cast<Gpr>(src1);
            op.xdst = static_cast<Xmm>(xdst);
            op.xsrc = static_cast<Xmm>(xsrc);
            op.mem.base = static_cast<Gpr>(mem_base);
            op.mem.index = static_cast<Gpr>(mem_index);
            op.mem.scale = static_cast<std::uint8_t>(mem_scale);
            op.mem.size = static_cast<MemSize>(mem_size);
            op.hasMem = has_mem != 0;
            op.cond = static_cast<Cond>(cond);
            op.width = static_cast<OpWidth>(width);
            op.length = static_cast<std::uint8_t>(length);
            entry.nativeCode.push_back(op);
        }
        parsed.entries.push_back(std::move(entry));
    }

    blob = std::move(parsed);
    return true;
}

} // namespace csd

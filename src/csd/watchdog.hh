/**
 * @file
 * Hardware watchdog timer that periodically re-triggers a translation
 * mode (paper §IV-B: stealth mode turns itself off once the decoy
 * ranges have been emptied, after arming the watchdog to fire before
 * the attacker's best probe interval).
 */

#ifndef CSD_CSD_WATCHDOG_HH
#define CSD_CSD_WATCHDOG_HH

#include <functional>

#include "common/types.hh"

namespace csd
{

/** A periodic one-shot-rearmed timer driven by decoder ticks. */
class WatchdogTimer
{
  public:
    using Callback = std::function<void()>;

    void setCallback(Callback cb) { callback_ = std::move(cb); }

    /** Arm the timer to fire @p period cycles from @p now. */
    void
    arm(Tick now, Cycles period)
    {
        armed_ = true;
        fireAt_ = now + period;
        period_ = period;
    }

    void disarm() { armed_ = false; }
    bool armed() const { return armed_; }
    Tick fireAt() const { return fireAt_; }

    /**
     * Advance time; fires (and disarms) when the deadline passes.
     * The callback typically re-triggers stealth mode, which re-arms.
     */
    void
    tick(Tick now)
    {
        if (armed_ && now >= fireAt_) {
            armed_ = false;
            if (callback_)
                callback_();
        }
    }

  private:
    bool armed_ = false;
    Tick fireAt_ = 0;
    Cycles period_ = 0;
    Callback callback_;
};

} // namespace csd

#endif // CSD_CSD_WATCHDOG_HH

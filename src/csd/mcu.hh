/**
 * @file
 * Microcode update (MCU) with auto-translation (paper §III-C, Fig. 2).
 *
 * A privileged runtime system pushes a microcode update whose data part
 * is written in native x86 instructions. The header carries a reserved
 * field marking it for context-sensitive decoding; the processor
 * verifies signature and integrity, auto-translates the native code
 * into micro-ops using the existing decoder tables, optimizes the
 * result, and installs it in the microcode engine as a custom
 * translation for a target opcode.
 *
 * Custom translations must not alter architectural register or memory
 * state unless the header explicitly allows it: by default the
 * auto-translator remaps every GPR in the update to decoder-temporary
 * registers and rejects updates that write memory.
 */

#ifndef CSD_CSD_MCU_HH
#define CSD_CSD_MCU_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "isa/macroop.hh"
#include "uop/flow.hh"

namespace csd
{

/** Magic signature of a valid MCU blob. */
constexpr std::uint32_t mcuSignature = 0xc5d0c0de;

/** Where the custom uops go relative to the native translation. */
enum class McuPlacement : std::uint8_t
{
    Prepend,  //!< custom uops run before the native flow
    Append,   //!< custom uops run after the native flow
    Replace,  //!< custom uops replace the native flow entirely
};

/** One translation rule in an update. */
struct McuEntry
{
    MacroOpcode targetOpcode = MacroOpcode::Nop;
    McuPlacement placement = McuPlacement::Append;
    /** The "data part": native x86 instructions to auto-translate. */
    std::vector<MacroOp> nativeCode;
};

/** Update header (paper Fig. 2). */
struct McuHeader
{
    std::uint32_t signature = mcuSignature;
    std::uint32_t revision = 1;
    /** Reserved field: marks the update for CSD auto-translation. */
    bool autoTranslate = true;
    /** Header declares that the update may write architectural state. */
    bool allowArchWrites = false;
    /** Integrity checksum over the data part. */
    std::uint32_t checksum = 0;
};

/** A complete update blob. */
struct McuBlob
{
    McuHeader header;
    std::vector<McuEntry> entries;
};

/**
 * Compute the integrity checksum over a blob's data part.
 *
 * The checksum is order-sensitive: entries (and the macro-ops within
 * each entry) are mixed in sequence, so reordering entries changes the
 * checksum even when the set of entries is identical. Order is
 * architecturally significant — placement semantics make the install
 * order part of the contract — so a reordered blob is a different
 * blob and must be resealed.
 */
std::uint32_t mcuChecksum(const McuBlob &blob);

/** Convenience: fill in the header checksum. */
void sealMcu(McuBlob &blob);

/** An installed, auto-translated custom translation. */
struct CustomTranslation
{
    McuPlacement placement = McuPlacement::Append;
    UopVec uops;
};

/**
 * The processor-side microcode update engine: verification,
 * auto-translation, optimization, and the custom translation table.
 */
class McuEngine
{
  public:
    /**
     * Optional admission prover consulted by applyUpdate after the
     * cheap header checks pass. Returns true to admit the blob; on
     * rejection it may describe why via the string pointer. The
     * csd-verify static MCU prover plugs in here so offline lint and
     * runtime install share one code path (verify/mcu_prover.hh).
     */
    using AdmissionProver = std::function<bool(
        const McuBlob &, const McuEngine &, std::string *)>;

    McuEngine();

    /**
     * Verify and install @p blob. On failure nothing is installed and
     * @p error (if non-null) describes the reason. Installation is
     * atomic: every entry is translated into a staging table first,
     * and the engine state (table, revision, stats) only changes once
     * the whole blob has been admitted.
     */
    bool applyUpdate(const McuBlob &blob, std::string *error = nullptr);

    /** Installed rule for @p opcode, or nullptr. */
    const CustomTranslation *lookup(MacroOpcode opcode) const;

    /** Drop all installed translations (keeps the revision watermark). */
    void clear();

    /** Number of installed rules. */
    std::size_t size() const { return table_.size(); }

    /** Highest revision ever applied (0 when none). */
    std::uint32_t installedRevision() const { return installedRevision_; }

    /** Install an admission prover (empty function removes it). */
    void setAdmissionProver(AdmissionProver prover)
    {
        prover_ = std::move(prover);
    }

    /**
     * Auto-translate one entry exactly as applyUpdate would, without
     * touching engine state. Public so the static admission prover can
     * replay the translation pipeline against its own re-derivation.
     * @p optimized_away (if non-null) reports how many uops the
     * optimizer removed.
     */
    bool translateEntry(const McuEntry &entry, bool allow_arch_writes,
                        CustomTranslation &out, std::string *error,
                        unsigned *optimized_away = nullptr) const;

    std::uint64_t updatesApplied() const { return updatesApplied_.value(); }
    std::uint64_t updatesRejected() const
    {
        return updatesRejected_.value();
    }

    StatGroup &stats() { return stats_; }

  private:
    std::map<MacroOpcode, CustomTranslation> table_;
    AdmissionProver prover_;
    std::uint32_t installedRevision_ = 0;

    StatGroup stats_;
    Counter updatesApplied_;
    Counter updatesRejected_;
    Counter uopsInstalled_;
    Counter uopsOptimizedAway_;
};

} // namespace csd

#endif // CSD_CSD_MCU_HH

#include "csd/devect.hh"

#include "common/logging.hh"

namespace csd
{

namespace
{

// Decoder temporaries used by devectorized flows (decoys use t6/t7).
const RegId tA = intTemp(0);    //!< chunk of the destination operand
const RegId tB = intTemp(1);    //!< chunk of the source operand
const RegId tX = intTemp(2);
const RegId tY = intTemp(3);
const RegId tAcc = intTemp(4);

Uop
alu3(MicroOpcode op, RegId dst, RegId src1, RegId src2, Addr pc)
{
    Uop uop;
    uop.op = op;
    uop.dst = dst;
    uop.src1 = src1;
    uop.src2 = src2;
    uop.macroPc = pc;
    return uop;
}

Uop
aluImm(MicroOpcode op, RegId dst, RegId src1, std::int64_t imm, Addr pc)
{
    Uop uop;
    uop.op = op;
    uop.dst = dst;
    uop.src1 = src1;
    uop.immData = true;
    uop.imm = imm;
    uop.macroPc = pc;
    return uop;
}

Uop
vext(RegId dst, RegId vec, unsigned chunk, Addr pc)
{
    Uop uop;
    uop.op = MicroOpcode::VExtract;
    uop.dst = dst;
    uop.src1 = vec;
    uop.immData = true;
    uop.imm = chunk;
    uop.macroPc = pc;
    return uop;
}

Uop
vins(RegId vec, RegId src, unsigned chunk, Addr pc)
{
    Uop uop;
    uop.op = MicroOpcode::VInsert;
    uop.dst = vec;
    uop.src1 = src;
    uop.immData = true;
    uop.imm = chunk;
    uop.macroPc = pc;
    return uop;
}

/** High-bit (sign) mask replicated per lane within a 64-bit chunk. */
std::uint64_t
laneHighMask(unsigned lane)
{
    std::uint64_t mask = 0;
    for (unsigned base = 0; base < 64; base += 8 * lane)
        mask |= 1ull << (base + 8 * lane - 1);
    return mask;
}

/** SWAR per-lane addition: r = ((a&L)+(b&L)) ^ ((a^b)&H). */
void
emitSwarAdd(UopVec &uops, unsigned lane, Addr pc)
{
    const auto h = static_cast<std::int64_t>(laneHighMask(lane));
    const auto l = static_cast<std::int64_t>(~laneHighMask(lane));
    uops.push_back(aluImm(MicroOpcode::And, tX, tA, l, pc));
    uops.push_back(aluImm(MicroOpcode::And, tY, tB, l, pc));
    uops.push_back(alu3(MicroOpcode::Add, tX, tX, tY, pc));
    uops.push_back(alu3(MicroOpcode::Xor, tY, tA, tB, pc));
    uops.push_back(aluImm(MicroOpcode::And, tY, tY, h, pc));
    uops.push_back(alu3(MicroOpcode::Xor, tA, tX, tY, pc));
}

/** SWAR per-lane subtraction: r = ((a|H)-(b&L)) ^ ((a^~b)&H). */
void
emitSwarSub(UopVec &uops, unsigned lane, Addr pc)
{
    const auto h = static_cast<std::int64_t>(laneHighMask(lane));
    const auto l = static_cast<std::int64_t>(~laneHighMask(lane));
    uops.push_back(aluImm(MicroOpcode::Or, tX, tA, h, pc));
    uops.push_back(aluImm(MicroOpcode::And, tY, tB, l, pc));
    uops.push_back(alu3(MicroOpcode::Sub, tX, tX, tY, pc));
    Uop not_b = alu3(MicroOpcode::Not, tY, tB, RegId(), pc);
    uops.push_back(not_b);
    uops.push_back(alu3(MicroOpcode::Xor, tY, tA, tY, pc));
    uops.push_back(aluImm(MicroOpcode::And, tY, tY, h, pc));
    uops.push_back(alu3(MicroOpcode::Xor, tA, tX, tY, pc));
}

/** Per-16-bit-lane low multiply within a 64-bit chunk. */
void
emitMul16(UopVec &uops, Addr pc)
{
    uops.push_back(aluImm(MicroOpcode::LoadImm, tAcc, RegId(), 0, pc));
    for (unsigned i = 0; i < 4; ++i) {
        const auto shift = static_cast<std::int64_t>(16 * i);
        uops.push_back(aluImm(MicroOpcode::Shr, tX, tA, shift, pc));
        uops.push_back(aluImm(MicroOpcode::And, tX, tX, 0xffff, pc));
        uops.push_back(aluImm(MicroOpcode::Shr, tY, tB, shift, pc));
        uops.push_back(aluImm(MicroOpcode::And, tY, tY, 0xffff, pc));
        uops.push_back(alu3(MicroOpcode::Mul, tX, tX, tY, pc));
        uops.push_back(aluImm(MicroOpcode::And, tX, tX, 0xffff, pc));
        uops.push_back(aluImm(MicroOpcode::Shl, tX, tX, shift, pc));
        uops.push_back(alu3(MicroOpcode::Or, tAcc, tAcc, tX, pc));
    }
    uops.push_back(alu3(MicroOpcode::Mov, tA, tAcc, RegId(), pc));
}

/** Per-32-bit-lane immediate shift within a 64-bit chunk. */
void
emitShift32(UopVec &uops, bool left, unsigned count, Addr pc)
{
    if (count >= 32) {
        uops.push_back(aluImm(MicroOpcode::LoadImm, tA, RegId(), 0, pc));
        return;
    }
    std::uint64_t lane_mask;
    if (left) {
        // Clear the low `count` bits of each lane (cross-lane spill).
        const std::uint64_t keep32 = (~0u) << count;
        lane_mask = (static_cast<std::uint64_t>(keep32) << 32) | keep32;
    } else {
        const std::uint64_t keep32 = (~0u) >> count;
        lane_mask = (static_cast<std::uint64_t>(keep32) << 32) | keep32;
    }
    uops.push_back(aluImm(left ? MicroOpcode::Shl : MicroOpcode::Shr, tA,
                          tA, static_cast<std::int64_t>(count), pc));
    uops.push_back(aluImm(MicroOpcode::And, tA, tA,
                          static_cast<std::int64_t>(lane_mask), pc));
}

/** Two packed float32 lanes per chunk via the scalar FP unit. */
void
emitFloat32(UopVec &uops, MicroOpcode scalar_op, Addr pc)
{
    uops.push_back(aluImm(MicroOpcode::LoadImm, tAcc, RegId(), 0, pc));
    for (unsigned i = 0; i < 2; ++i) {
        const auto shift = static_cast<std::int64_t>(32 * i);
        uops.push_back(aluImm(MicroOpcode::Shr, tX, tA, shift, pc));
        uops.push_back(aluImm(MicroOpcode::And, tX, tX,
                              static_cast<std::int64_t>(0xffffffff), pc));
        uops.push_back(aluImm(MicroOpcode::Shr, tY, tB, shift, pc));
        uops.push_back(aluImm(MicroOpcode::And, tY, tY,
                              static_cast<std::int64_t>(0xffffffff), pc));
        uops.push_back(alu3(scalar_op, tX, tX, tY, pc));
        uops.push_back(aluImm(MicroOpcode::Shl, tX, tX, shift, pc));
        uops.push_back(alu3(MicroOpcode::Or, tAcc, tAcc, tX, pc));
    }
    uops.push_back(alu3(MicroOpcode::Mov, tA, tAcc, RegId(), pc));
}

} // namespace

bool
devectorizable(MacroOpcode op)
{
    return isVectorArith(op) || op == MacroOpcode::MovdqaRR;
}

std::optional<UopFlow>
devectorize(const MacroOp &op)
{
    if (!devectorizable(op.opcode))
        return std::nullopt;

    const Addr pc = op.pc;
    const RegId dst = vecReg(op.xdst);
    const RegId src = op.xsrc != Xmm::Invalid ? vecReg(op.xsrc) : RegId();

    UopFlow flow;
    auto &uops = flow.uops;

    for (unsigned chunk = 0; chunk < 2; ++chunk) {
        uops.push_back(vext(tA, dst, chunk, pc));
        if (src.valid())
            uops.push_back(vext(tB, src, chunk, pc));

        switch (op.opcode) {
          case MacroOpcode::MovdqaRR:
            uops.push_back(alu3(MicroOpcode::Mov, tA, tB, RegId(), pc));
            break;

          case MacroOpcode::Paddq:
            uops.push_back(alu3(MicroOpcode::Add, tA, tA, tB, pc));
            break;
          case MacroOpcode::Psubq:
            uops.push_back(alu3(MicroOpcode::Sub, tA, tA, tB, pc));
            break;
          case MacroOpcode::Paddb:
            emitSwarAdd(uops, 1, pc);
            break;
          case MacroOpcode::Paddw:
            emitSwarAdd(uops, 2, pc);
            break;
          case MacroOpcode::Paddd:
            emitSwarAdd(uops, 4, pc);
            break;
          case MacroOpcode::Psubb:
            emitSwarSub(uops, 1, pc);
            break;
          case MacroOpcode::Psubw:
            emitSwarSub(uops, 2, pc);
            break;
          case MacroOpcode::Psubd:
            emitSwarSub(uops, 4, pc);
            break;

          case MacroOpcode::Pand:
            uops.push_back(alu3(MicroOpcode::And, tA, tA, tB, pc));
            break;
          case MacroOpcode::Por:
            uops.push_back(alu3(MicroOpcode::Or, tA, tA, tB, pc));
            break;
          case MacroOpcode::Pxor:
            uops.push_back(alu3(MicroOpcode::Xor, tA, tA, tB, pc));
            break;

          case MacroOpcode::Pmullw:
            emitMul16(uops, pc);
            break;

          case MacroOpcode::PslldI:
            emitShift32(uops, true, static_cast<unsigned>(op.imm), pc);
            break;
          case MacroOpcode::PsrldI:
            emitShift32(uops, false, static_cast<unsigned>(op.imm), pc);
            break;

          case MacroOpcode::Addps:
            emitFloat32(uops, MicroOpcode::FAddS, pc);
            break;
          case MacroOpcode::Subps:
            emitFloat32(uops, MicroOpcode::FSubS, pc);
            break;
          case MacroOpcode::Mulps:
            emitFloat32(uops, MicroOpcode::FMulS, pc);
            break;
          case MacroOpcode::Divps:
            emitFloat32(uops, MicroOpcode::FDivS, pc);
            break;
          case MacroOpcode::Sqrtps: {
            // Unary: operate on the source operand's lanes.
            // tB holds src; route through the float helper by copying.
            uops.push_back(alu3(MicroOpcode::Mov, tA, tB, RegId(), pc));
            uops.push_back(aluImm(MicroOpcode::LoadImm, tAcc, RegId(), 0, pc));
            for (unsigned i = 0; i < 2; ++i) {
                const auto shift = static_cast<std::int64_t>(32 * i);
                uops.push_back(aluImm(MicroOpcode::Shr, tX, tA, shift, pc));
                uops.push_back(aluImm(
                    MicroOpcode::And, tX, tX,
                    static_cast<std::int64_t>(0xffffffff), pc));
                uops.push_back(alu3(MicroOpcode::FSqrtS, tX, tX, RegId(),
                                    pc));
                uops.push_back(aluImm(MicroOpcode::Shl, tX, tX, shift, pc));
                uops.push_back(alu3(MicroOpcode::Or, tAcc, tAcc, tX, pc));
            }
            uops.push_back(alu3(MicroOpcode::Mov, tA, tAcc, RegId(), pc));
            break;
          }

          case MacroOpcode::Addpd:
            uops.push_back(alu3(MicroOpcode::FAddSd, tA, tA, tB, pc));
            break;
          case MacroOpcode::Subpd:
            uops.push_back(alu3(MicroOpcode::FSubSd, tA, tA, tB, pc));
            break;
          case MacroOpcode::Mulpd:
            uops.push_back(alu3(MicroOpcode::FMulSd, tA, tA, tB, pc));
            break;

          default:
            csd_panic("devectorize: unhandled opcode ",
                      static_cast<int>(op.opcode));
        }

        uops.push_back(vins(dst, tA, chunk, pc));
    }

    // Long scalar flows are microsequenced, exactly like other complex
    // translations.
    if (uops.size() > 4)
        flow.fromMsrom = true;
    for (std::size_t i = 0; i < uops.size(); ++i)
        uops[i].uopIdx = static_cast<std::uint8_t>(i < 255 ? i : 255);
    return flow;
}

} // namespace csd

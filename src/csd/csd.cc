#include "csd/csd.hh"

#include <iterator>

#include "csd/devect.hh"

namespace csd
{

ContextSensitiveDecoder::ContextSensitiveDecoder(MsrFile &msrs,
                                                 TaintTracker *taint)
    : msrs_(msrs), taint_(taint), stats_("csd")
{
    msrs_.setWriteHook([this](MsrAddr addr, std::uint64_t value) {
        onMsrWrite(addr, value);
    });
    watchdog_.setCallback([this]() {
        ++watchdogFires_;
        CSD_TRACE(Csd, "watchdog_fire", now_);
        retriggerStealth();
    });

    stats_.addCounter("translations", &translations_,
                      "macro-ops translated");
    stats_.addCounter("stealth_flows", &stealthFlows_,
                      "flows with injected decoys");
    stats_.addCounter("decoy_uops", &decoyUops_,
                      "decoy micro-ops injected (expanded)");
    stats_.addCounter("devect_flows", &devectFlows_,
                      "vector flows scalarized");
    stats_.addCounter("mcu_flows", &mcuFlows_,
                      "flows using MCU custom translations");
    stats_.addCounter("stealth_triggers", &stealthTriggers_,
                      "stealth-mode (re)triggers");
    stats_.addCounter("watchdog_fires", &watchdogFires_,
                      "watchdog-driven re-triggers");
    stats_.addCounter("noise_uops", &noiseUops_,
                      "timing-noise NOP uops injected");
    stats_.addDistribution("decoys_per_flow", &decoysPerFlow_,
                           "decoy uops injected per stealth flow");
    stealthFlowRate_ = [this] {
        return static_cast<double>(stealthFlows_.value()) /
               static_cast<double>(translations_.value());
    };
    stats_.addFormula("stealth_flow_rate", &stealthFlowRate_,
                      "fraction of translations carrying decoys");
    stats_.addChild(&mcu_.stats());
}


void
ContextSensitiveDecoder::onMsrWrite(MsrAddr addr, std::uint64_t value)
{
    // Register tracking: a control write enabling stealth, or an update
    // to the decoy range registers while enabled, triggers an immediate
    // mode switch (internal-range snapshot).
    (void)value;
    // Any MSR write may change what a translation produces (control
    // bits, decoy ranges, tainted-PC scratchpads): stale memoized flows
    // must be re-translated.
    ++epoch_;
    switch (addr) {
      case MsrAddr::CsdControl:
        if (stealthArmed())
            retriggerStealth();
        else {
            pending_.clear();
            watchdog_.disarm();
        }
        break;
      default: {
        const auto raw = static_cast<std::uint32_t>(addr);
        const auto ibase =
            static_cast<std::uint32_t>(MsrAddr::DecoyIRangeBase);
        const auto dbase =
            static_cast<std::uint32_t>(MsrAddr::DecoyDRangeBase);
        const bool range_write =
            (raw >= ibase && raw < ibase + 2 * numDecoyRanges) ||
            (raw >= dbase && raw < dbase + 2 * numDecoyRanges);
        if (range_write && stealthArmed())
            retriggerStealth();
        break;
      }
    }
}

void
ContextSensitiveDecoder::retriggerStealth()
{
    ++epoch_;
    pending_.clear();
    for (const AddrRange &range : msrs_.decoyIRanges())
        if (range.valid())
            pending_.push_back(PendingRange{range, true});
    for (const AddrRange &range : msrs_.decoyDRanges())
        if (range.valid())
            pending_.push_back(PendingRange{range, false});
    if (!pending_.empty()) {
        ++stealthTriggers_;
        CSD_TRACE(Csd, "stealth_trigger", now_, 'i', "ranges",
                  static_cast<double>(pending_.size()));
    }
}


void
ContextSensitiveDecoder::setDevectorize(bool on)
{
    if (devect_ != on)
        ++epoch_;
    devect_ = on;
}




bool
ContextSensitiveDecoder::instrTainted(const MacroOp &op) const
{
    const std::uint64_t ctrl = msrs_.control();
    if (ctrl & ctrlPcRangeTrigger) {
        for (Addr pc : msrs_.taintedPcs())
            if (pc == op.pc)
                return true;
    }
    if ((ctrl & ctrlDiftTrigger) && taint_)
        return taint_->taintedLoadOrBranch(op);
    return false;
}

UopFlow
ContextSensitiveDecoder::applyMcu(const MacroOp &op, UopFlow flow)
{
    const CustomTranslation *xlat = mcu_.lookup(op.opcode);
    if (!xlat)
        return flow;
    ++mcuFlows_;
    lastCtx_ = ctxMcu;
    UopVec custom = xlat->uops;
    for (Uop &uop : custom) {
        uop.macroPc = op.pc;
    }
    switch (xlat->placement) {
      case McuPlacement::Replace:
        flow.uops = std::move(custom);
        flow.loop.reset();
        break;
      case McuPlacement::Prepend:
        flow.uops.insert(flow.uops.begin(), custom.begin(), custom.end());
        if (flow.loop) {
            flow.loop->bodyStart += custom.size();
            flow.loop->bodyEnd += custom.size();
        }
        break;
      case McuPlacement::Append: {
        // Keep a trailing branch the last uop of the flow.
        std::size_t insert_at = flow.uops.size();
        if (!flow.uops.empty() && flow.uops.back().isBranch())
            insert_at = flow.uops.size() - 1;
        flow.uops.insert(flow.uops.begin() +
                             static_cast<std::ptrdiff_t>(insert_at),
                         custom.begin(), custom.end());
        break;
      }
    }
    if (flow.uops.size() > 4)
        flow.fromMsrom = true;
    return flow;
}

void
ContextSensitiveDecoder::applyTimingNoise(const MacroOp &op,
                                          UopFlow &flow)
{
    // Galois LFSR: cheap, key-independent pseudo-randomness (the chip
    // would use a hardware entropy source).
    noiseLfsr_ = (noiseLfsr_ >> 1) ^
                 (-(noiseLfsr_ & 1) & 0xd800000000000000ull);
    const unsigned nops = static_cast<unsigned>(
        noiseLfsr_ % (noiseMaxNops + 1));
    if (nops == 0)
        return;

    std::size_t insert_at = flow.uops.size();
    if (!flow.uops.empty() && flow.uops.back().isBranch())
        insert_at = flow.uops.size() - 1;
    for (unsigned i = 0; i < nops; ++i) {
        Uop nop;
        nop.op = MicroOpcode::Nop;
        nop.decoy = true;
        nop.macroPc = op.pc;
        flow.uops.insert(flow.uops.begin() +
                             static_cast<std::ptrdiff_t>(insert_at),
                         nop);
        if (flow.loop && flow.loop->bodyStart >= insert_at) {
            ++flow.loop->bodyStart;
            ++flow.loop->bodyEnd;
        }
    }
    // Each dynamic instance is different: never cache it.
    flow.cacheable = false;
    noiseUops_ += nops;
    lastCtx_ = ctxNoise;
}

UopFlow
ContextSensitiveDecoder::translate(const MacroOp &op)
{
    ++translations_;
    lastCtx_ = ctxNative;

    // Selective devectorization has priority for VPU arithmetic.
    if (devect_) {
        if (auto scalar = devectorize(op)) {
            ++devectFlows_;
            lastCtx_ = ctxDevect;
            traceContextSwitch();
            return *std::move(scalar);
        }
    }

    UopFlow flow = translateNative(op);

    if (mcuMode_)
        flow = applyMcu(op, flow);

    // Stealth-mode decoy injection for tainted loads/stores/branches.
    if (stealthArmed() && !pending_.empty() && instrTainted(op)) {
        const PendingRange next = pending_.front();
        if (injectDecoys(flow, next.range, next.isInstr, decoyStyle)) {
            pending_.erase(pending_.begin());
            ++stealthFlows_;
            const std::uint64_t injected = countDecoyUops(flow);
            decoyUops_ += injected;
            decoysPerFlow_.sample(static_cast<double>(injected));
            CSD_TRACE(Decoy, next.isInstr ? "inject_irange"
                                          : "inject_drange",
                      now_, 'i', "uops", static_cast<double>(injected));
            lastCtx_ = ctxStealth;
            if (flow.uops.size() > 4 || flow.loop)
                flow.fromMsrom = true;
            if (pending_.empty()) {
                // All ranges emptied: stealth turns itself off and the
                // watchdog re-triggers it before the attacker's next
                // probe interval (paper §IV-B).
                watchdog_.arm(now_, msrs_.watchdogPeriod());
            }
        }
    }

    if (msrs_.control() & ctrlTimingNoise)
        applyTimingNoise(op, flow);

    traceContextSwitch();
    return flow;
}

void
ContextSensitiveDecoder::traceContextSwitch()
{
    if (!traceEnabled(TraceFlag::Csd) || lastCtx_ == tracedCtx_)
        return;
    static const char *const names[] = {
        "ctx_native", "ctx_stealth", "ctx_devect", "ctx_mcu", "ctx_noise",
    };
    const char *name = lastCtx_ < std::size(names) ? names[lastCtx_]
                                                   : "ctx_?";
    trace_detail::current->record(TraceFlag::Csd, name, now_, 'i', "from",
                                  static_cast<double>(tracedCtx_));
    tracedCtx_ = lastCtx_;
}

} // namespace csd

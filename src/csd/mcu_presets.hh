/**
 * @file
 * Shipped microcode-update defense blobs and a text wire format.
 *
 * The ROADMAP's microcode-defense ecosystem distributes defenses as
 * signed MCU blobs (paper §III-C; PAPERS.md "Microcode as a Building
 * Block for System Defenses"). This module holds the exemplar blobs
 * the repo ships — every one must be admitted by the static MCU
 * prover (`csd-lint --mcu`, verify/mcu_prover.hh) — plus a
 * line-oriented text serialization so blobs can be authored offline,
 * sealed, linted, and only then loaded (see EXPERIMENTS.md).
 */

#ifndef CSD_CSD_MCU_PRESETS_HH
#define CSD_CSD_MCU_PRESETS_HH

#include <string>

#include "common/addr_range.hh"
#include "csd/mcu.hh"

namespace csd
{

/**
 * Load-instrumentation blob: appends a remapped counter increment to
 * every Load flow (the paper's antivirus-metadata example).
 */
McuBlob mcuLoadInstrumentationPreset(std::uint32_t revision = 1);

/**
 * Constant-time full-table-sweep defense: appends one absolute load
 * per cache block of @p table to every Load flow, so a tainted-index
 * table lookup touches every line the attacker could probe and the
 * cache channel carries no index information (ROADMAP constant-time
 * enforcement mode). All sweep loads write one decoder temporary; the
 * blob never touches architectural state.
 */
McuBlob mcuConstantTimeSweepPreset(const AddrRange &table,
                                   std::uint32_t revision = 1);

/** Serialize @p blob to the line-oriented text wire format. */
std::string mcuBlobToText(const McuBlob &blob);

/**
 * Parse the text wire format back into @p blob. Returns false and
 * describes the problem in @p error (if non-null) on malformed input.
 * Round-trips exactly: parse(serialize(b)) == b field-for-field.
 */
bool mcuBlobFromText(const std::string &text, McuBlob &blob,
                     std::string *error = nullptr);

} // namespace csd

#endif // CSD_CSD_MCU_PRESETS_HH

/**
 * @file
 * Decoy micro-op injection (paper §IV-B, Fig. 3/4).
 *
 * Stealth-mode translation appends a decoy micro-loop to the flow of a
 * tainted load/store/branch. The loop touches every cache block of a
 * decoy address range, obfuscating the key-dependent access pattern an
 * attacker could otherwise observe. Decoys write only decoder-temporary
 * registers, so they are architecturally invisible and unreadable from
 * any privilege level.
 */

#ifndef CSD_CSD_DECOY_HH
#define CSD_CSD_DECOY_HH

#include "common/addr_range.hh"
#include "uop/flow.hh"

namespace csd
{

/** Decoy loop shape (ablation: the unrolled form breaks the micro-op
 *  cache's 3-way window check; the micro-loop form does not). */
enum class DecoyStyle : std::uint8_t
{
    MicroLoop,  //!< ld/add fused body replayed blockCount times (Fig. 4c)
    Unrolled,   //!< one decoy load uop per cache block
};

/**
 * Inject decoy loads covering @p range into @p flow.
 *
 * The decoys are placed before the flow's trailing branch micro-op (if
 * any) so they execute regardless of the branch direction. Flows that
 * already contain a micro-loop are left unmodified when the micro-loop
 * style is requested (one loop per flow); callers fall back to the
 * next tainted instruction.
 *
 * @param flow     flow to modify
 * @param range    decoy address range (all its blocks get loaded)
 * @param is_instr true if the range is code (loads hit the I-cache)
 * @param style    micro-loop or unrolled
 * @return true if decoys were injected
 */
bool injectDecoys(UopFlow &flow, const AddrRange &range, bool is_instr,
                  DecoyStyle style);

/** Count decoy uops in a flow (expanded, honoring the micro-loop). */
std::uint64_t countDecoyUops(const UopFlow &flow);

} // namespace csd

#endif // CSD_CSD_DECOY_HH

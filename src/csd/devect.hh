/**
 * @file
 * Selective devectorization (paper §V, Fig. 6).
 *
 * When the vector unit is power-gated, the context-sensitive decoder
 * translates SSE instructions into equivalent scalar micro-op flows
 * that execute on the integer ALUs and the scalar FP unit. Packed
 * integer arithmetic uses masked (SWAR) sequences — the optimized
 * "four adds and accumulate" form the paper describes — rather than a
 * 16-iteration micro-loop.
 *
 * Vector loads/stores and the register file stay powered; only
 * VPU-executed arithmetic is rewritten.
 */

#ifndef CSD_CSD_DEVECT_HH
#define CSD_CSD_DEVECT_HH

#include <optional>

#include "isa/macroop.hh"
#include "uop/flow.hh"

namespace csd
{

/**
 * Devectorize one vector-arithmetic macro-op into a scalar flow.
 * Returns std::nullopt for instructions that do not execute on the VPU
 * (including vector loads/stores, which use the memory ports).
 *
 * Guarantee (tested): executing the returned flow produces exactly the
 * same architectural state as the native vector translation.
 */
std::optional<UopFlow> devectorize(const MacroOp &op);

/** True iff devectorize() produces a flow for this opcode. */
bool devectorizable(MacroOpcode op);

} // namespace csd

#endif // CSD_CSD_DEVECT_HH

#include "csd/decoy.hh"

#include "common/logging.hh"

namespace csd
{

namespace
{

/** Decoder temporaries reserved for decoys (t0.. are used by native
 *  translations; decoys use the top two to avoid clashes). */
const RegId decoyPtr = intTemp(numIntTemps - 2);   // t6
const RegId decoySink = intTemp(numIntTemps - 1);  // t7

Uop
decoyLoad(Addr macro_pc, bool is_instr)
{
    Uop ld;
    ld.op = MicroOpcode::Load;
    ld.dst = decoySink;
    ld.memSize = 8;
    ld.decoy = true;
    ld.instrFetch = is_instr;
    ld.macroPc = macro_pc;
    return ld;
}

} // namespace

bool
injectDecoys(UopFlow &flow, const AddrRange &range, bool is_instr,
             DecoyStyle style)
{
    if (!range.valid())
        return false;
    if (style == DecoyStyle::MicroLoop && flow.loop)
        return false;  // one micro-loop per flow

    const Addr base = blockAlign(range.start);
    const auto blocks = static_cast<std::uint32_t>(range.blockCount());
    const Addr macro_pc =
        flow.uops.empty() ? invalidAddr : flow.uops.front().macroPc;

    // Insertion point: before a trailing branch so the decoys execute
    // on both paths of a conditional.
    std::size_t insert_at = flow.uops.size();
    if (!flow.uops.empty() && flow.uops.back().isBranch())
        insert_at = flow.uops.size() - 1;

    UopVec decoys;
    if (style == DecoyStyle::Unrolled) {
        decoys.reserve(blocks);
        for (std::uint32_t blk = 0; blk < blocks; ++blk) {
            Uop ld = decoyLoad(macro_pc, is_instr);
            ld.disp = static_cast<std::int64_t>(base +
                                                blk * cacheBlockSize);
            decoys.push_back(ld);
        }
    } else {
        // mov t6, base ; top: ld t7, [t6] / add t6, t6, 64 ; iterate.
        Uop limm;
        limm.op = MicroOpcode::LoadImm;
        limm.dst = decoyPtr;
        limm.imm = static_cast<std::int64_t>(base);
        limm.decoy = true;
        limm.macroPc = macro_pc;
        decoys.push_back(limm);

        Uop ld = decoyLoad(macro_pc, is_instr);
        ld.src1 = decoyPtr;
        ld.fusedLeader = true;  // the paper's fused ld/subi pair
        decoys.push_back(ld);

        Uop add;
        add.op = MicroOpcode::Add;
        add.dst = decoyPtr;
        add.src1 = decoyPtr;
        add.immData = true;
        add.imm = cacheBlockSize;
        add.decoy = true;
        add.macroPc = macro_pc;
        add.fusedFollower = true;
        decoys.push_back(add);

        MicroLoop loop;
        loop.bodyStart = static_cast<std::uint16_t>(insert_at + 1);
        loop.bodyEnd = static_cast<std::uint16_t>(insert_at + 3);
        loop.tripCount = blocks;
        flow.loop = loop;
    }

    flow.uops.insert(flow.uops.begin() +
                         static_cast<std::ptrdiff_t>(insert_at),
                     decoys.begin(), decoys.end());
    for (std::size_t i = 0; i < flow.uops.size(); ++i)
        flow.uops[i].uopIdx =
            static_cast<std::uint8_t>(i < 255 ? i : 255);
    return true;
}

std::uint64_t
countDecoyUops(const UopFlow &flow)
{
    std::uint64_t count = 0;
    for (const Uop &uop : flow.uops)
        if (uop.decoy)
            ++count;
    if (flow.loop && flow.loop->tripCount > 1) {
        std::uint64_t body = 0;
        for (unsigned i = flow.loop->bodyStart; i < flow.loop->bodyEnd;
             ++i) {
            if (flow.uops[i].decoy)
                ++body;
        }
        count += body * (flow.loop->tripCount - 1);
    }
    return count;
}

} // namespace csd

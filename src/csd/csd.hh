/**
 * @file
 * The context-sensitive decoder (paper §III).
 *
 * Implements the Translator interface used by the front end and swaps
 * translations based on execution context:
 *
 *  - Stealth mode (§IV): triggered by MSR writes (register tracking),
 *    tainted-PC scratchpads, DIFT taint interception, or the hardware
 *    watchdog; injects decoy micro-ops covering the decoy address-range
 *    MSRs, then turns itself off and arms the watchdog.
 *  - Selective devectorization (§V): triggered by the unit-criticality
 *    power-gating controller; rewrites VPU arithmetic into scalar flows.
 *  - MCU custom translations (§III-C): rules installed through the
 *    auto-translated microcode update path.
 */

#ifndef CSD_CSD_CSD_HH
#define CSD_CSD_CSD_HH

#include "common/stats.hh"
#include "common/trace.hh"
#include "csd/decoy.hh"
#include "csd/devect.hh"
#include "csd/mcu.hh"
#include "csd/msr.hh"
#include "csd/watchdog.hh"
#include "decode/translator.hh"
#include "dift/taint.hh"

namespace csd
{

/** Translation context ids (micro-op cache tag bits). */
enum : unsigned
{
    ctxNative = 0,
    ctxStealth = 1,
    ctxDevect = 2,
    ctxMcu = 3,
    ctxNoise = 4,
};

/**
 * The context-sensitive decoder. Final, and its flow-cache protocol
 * hooks are defined inline below the class: the superblock fast path
 * consults them per macro-op on a devirtualized pointer
 * (sim/fastpath.cc), so they must be visible for inlining.
 */
class ContextSensitiveDecoder final : public Translator
{
  public:
    /**
     * @param msrs  MSR file; the decoder installs its register-tracking
     *              hook so writes switch context immediately
     * @param taint optional DIFT tracker for the dynamic trigger
     */
    explicit ContextSensitiveDecoder(MsrFile &msrs,
                                     TaintTracker *taint = nullptr);

    // --- Translator interface -------------------------------------------

    UopFlow translate(const MacroOp &op) override;

    /** Context used by the most recent translate() call. */
    unsigned contextId() const override { return lastCtx_; }

    /** Advance the decoder clock; fires the watchdog. */
    void tick(Tick now) override;

    /** Bumped on every trigger-state change (MSR write, devect/MCU
     *  mode switch, stealth retrigger): cached flows become stale. */
    std::uint64_t translationEpoch() const override { return epoch_; }

    /**
     * A translation is memoizable unless it would consume mutable
     * per-instance state: MCU rule lookup, timing-noise randomness, or
     * a pending stealth decoy injection for a tainted instruction.
     */
    bool translationStable(const MacroOp &op) const override;

    /**
     * Stable flows only ever come from the native or the
     * devectorization path (stealth/MCU/noise translations are never
     * stable), so the expected context is a function of the
     * devectorize switch and the opcode alone.
     */
    unsigned stableContext(const MacroOp &op) const override;

    /** Replay translate()'s accounting for a flow served from cache. */
    void noteCachedTranslation(const MacroOp &op, const UopFlow &flow,
                               unsigned ctx) override;

    // --- Devectorization control (unit-criticality predictor) -----------

    /** Enable/disable vector->scalar translation (VPU gated). */
    void setDevectorize(bool on);
    bool devectorizing() const { return devect_; }

    // --- Stealth-mode introspection --------------------------------------

    /** Ranges still pending decoy injection in this stealth burst. */
    std::size_t pendingRanges() const { return pending_.size(); }

    /** True if stealth translation is armed (control bit set). */
    bool stealthArmed() const;

    /** Decoy loop shape knob (ablation). */
    DecoyStyle decoyStyle = DecoyStyle::MicroLoop;

    /** Max NOPs injected per instruction in timing-noise mode. */
    unsigned noiseMaxNops = 3;

    /** Seed the timing-noise LFSR (chip-internal entropy stand-in). */
    void seedNoise(std::uint64_t seed) { noiseLfsr_ = seed | 1; }

    // --- MCU --------------------------------------------------------------

    McuEngine &mcu() { return mcu_; }

    /** Enable applying installed MCU rules. */
    void
    setMcuMode(bool on)
    {
        if (mcuMode_ != on)
            ++epoch_;
        mcuMode_ = on;
    }
    bool mcuMode() const { return mcuMode_; }

    StatGroup &stats() { return stats_; }

  private:
    void onMsrWrite(MsrAddr addr, std::uint64_t value);

    /** Copy the decoy-range MSRs into the decoder's internal registers. */
    void retriggerStealth();

    /** Is this instruction tainted under the active trigger mechanisms? */
    bool instrTainted(const MacroOp &op) const;

    UopFlow applyMcu(const MacroOp &op, UopFlow flow);
    void applyTimingNoise(const MacroOp &op, UopFlow &flow);

    /** Record a Csd trace event when the translation context changes. */
    void traceContextSwitch();

    MsrFile &msrs_;
    TaintTracker *taint_;
    WatchdogTimer watchdog_;
    McuEngine mcu_;

    struct PendingRange
    {
        AddrRange range;
        bool isInstr;
    };
    SmallVector<PendingRange, 2 * numDecoyRanges> pending_;

    bool devect_ = false;
    bool mcuMode_ = false;
    unsigned lastCtx_ = ctxNative;
    unsigned tracedCtx_ = ctxNative;
    Tick now_ = 0;
    std::uint64_t epoch_ = 0;
    std::uint64_t noiseLfsr_ = 0xace1ace1ace1ace1ull;

    StatGroup stats_;
    Counter translations_;
    Counter stealthFlows_;
    Counter decoyUops_;
    Counter devectFlows_;
    Counter mcuFlows_;
    Counter stealthTriggers_;
    Counter watchdogFires_;
    Counter noiseUops_;
    Distribution decoysPerFlow_{0, 64, 16};
    Formula stealthFlowRate_;
};

inline void
ContextSensitiveDecoder::tick(Tick now)
{
    now_ = now;
    watchdog_.tick(now);
}

inline bool
ContextSensitiveDecoder::stealthArmed() const
{
    return (msrs_.control() & ctrlStealthEnable) != 0;
}

inline bool
ContextSensitiveDecoder::translationStable(const MacroOp &op) const
{
    if (mcuMode_)
        return false;
    if (msrs_.control() & ctrlTimingNoise)
        return false;
    // A pending decoy injection for a tainted op consumes a decoy
    // range and advances the stealth burst: never memoized.
    if (stealthArmed() && !pending_.empty() && instrTainted(op))
        return false;
    return true;
}

inline unsigned
ContextSensitiveDecoder::stableContext(const MacroOp &op) const
{
    // Mirrors translate()'s priority order for the stable paths:
    // selective devectorization first, else the native translation.
    return devect_ && devectorizable(op.opcode) ? ctxDevect : ctxNative;
}

inline void
ContextSensitiveDecoder::noteCachedTranslation(const MacroOp &op,
                                               const UopFlow &flow,
                                               unsigned ctx)
{
    // Reproduce exactly the accounting translate() performs on the
    // paths a memoizable flow can come from (native or devectorized;
    // stealth/MCU/noise flows are never stable, see above).
    (void)op;
    (void)flow;
    ++translations_;
    lastCtx_ = ctx;
    if (ctx == ctxDevect)
        ++devectFlows_;
    // traceContextSwitch re-checks this and is a no-op when the CSD
    // trace stream is off; guarding here keeps an out-of-line call off
    // the fast path's per-macro protocol (it runs only when tracing is
    // disabled, so the call could never record anything).
    if (traceEnabled(TraceFlag::Csd)) [[unlikely]]
        traceContextSwitch();
}

} // namespace csd

#endif // CSD_CSD_CSD_HH

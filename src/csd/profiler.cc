#include "csd/profiler.hh"

#include <algorithm>

namespace csd
{

void
DecoderProfiler::account(const MacroOp &op, const UopFlow &flow)
{
    auto bump = [this](ProfileEvent event, std::uint64_t n = 1) {
        counts_[static_cast<unsigned>(event)] += n;
    };

    bump(ProfileEvent::Instructions);
    bump(ProfileEvent::Uops, flow.expandedCount());
    if (flow.fromMsrom)
        bump(ProfileEvent::MicrosequencedFlows);
    if (isVector(op.opcode))
        bump(ProfileEvent::VectorOps);

    for (const Uop &uop : flow.uops) {
        if (uop.isLoad())
            bump(ProfileEvent::Loads);
        if (uop.isStore())
            bump(ProfileEvent::Stores);
        if (uop.isBranch())
            bump(ProfileEvent::Branches);
        if (uop.writesFlags)
            bump(ProfileEvent::FlagWriters);
    }

    ++pcCounts_[op.pc];
}

std::vector<std::pair<Addr, std::uint64_t>>
DecoderProfiler::hottest(std::size_t n) const
{
    std::vector<std::pair<Addr, std::uint64_t>> entries(
        pcCounts_.begin(), pcCounts_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    if (entries.size() > n)
        entries.resize(n);
    return entries;
}

void
DecoderProfiler::reset()
{
    counts_.fill(0);
    pcCounts_.clear();
}

} // namespace csd

#include "csd/msr.hh"

#include "common/logging.hh"

namespace csd
{

void
MsrFile::notify(MsrAddr addr, std::uint64_t value)
{
    if (hook_)
        hook_(addr, value);
}

void
MsrFile::write(MsrAddr addr, std::uint64_t value)
{
    const auto raw = static_cast<std::uint32_t>(addr);
    const auto irange_base =
        static_cast<std::uint32_t>(MsrAddr::DecoyIRangeBase);
    const auto drange_base =
        static_cast<std::uint32_t>(MsrAddr::DecoyDRangeBase);
    const auto pc_base = static_cast<std::uint32_t>(MsrAddr::TaintedPcBase);

    if (addr == MsrAddr::CsdControl) {
        control_ = value;
    } else if (addr == MsrAddr::WatchdogPeriod) {
        if (value == 0)
            csd_fatal("MsrFile: watchdog period must be nonzero");
        watchdogPeriod_ = value;
    } else if (raw >= irange_base && raw < irange_base + 2 * numDecoyRanges) {
        const unsigned slot = (raw - irange_base) / 2;
        if ((raw - irange_base) % 2 == 0)
            iRanges_[slot].start = value;
        else
            iRanges_[slot].end = value;
    } else if (raw >= drange_base && raw < drange_base + 2 * numDecoyRanges) {
        const unsigned slot = (raw - drange_base) / 2;
        if ((raw - drange_base) % 2 == 0)
            dRanges_[slot].start = value;
        else
            dRanges_[slot].end = value;
    } else if (raw >= pc_base && raw < pc_base + numTaintedPcRegs) {
        taintedPcs_[raw - pc_base] = value;
    } else {
        csd_fatal("MsrFile: write to unknown MSR 0x", std::hex, raw);
    }
    notify(addr, value);
}

std::uint64_t
MsrFile::read(MsrAddr addr) const
{
    const auto raw = static_cast<std::uint32_t>(addr);
    const auto irange_base =
        static_cast<std::uint32_t>(MsrAddr::DecoyIRangeBase);
    const auto drange_base =
        static_cast<std::uint32_t>(MsrAddr::DecoyDRangeBase);
    const auto pc_base = static_cast<std::uint32_t>(MsrAddr::TaintedPcBase);

    if (addr == MsrAddr::CsdControl)
        return control_;
    if (addr == MsrAddr::WatchdogPeriod)
        return watchdogPeriod_;
    if (raw >= irange_base && raw < irange_base + 2 * numDecoyRanges) {
        const unsigned slot = (raw - irange_base) / 2;
        return (raw - irange_base) % 2 == 0 ? iRanges_[slot].start
                                            : iRanges_[slot].end;
    }
    if (raw >= drange_base && raw < drange_base + 2 * numDecoyRanges) {
        const unsigned slot = (raw - drange_base) / 2;
        return (raw - drange_base) % 2 == 0 ? dRanges_[slot].start
                                            : dRanges_[slot].end;
    }
    if (raw >= pc_base && raw < pc_base + numTaintedPcRegs)
        return taintedPcs_[raw - pc_base];
    csd_fatal("MsrFile: read of unknown MSR 0x", std::hex, raw);
}

void
MsrFile::setDecoyIRange(unsigned idx, const AddrRange &range)
{
    if (idx >= numDecoyRanges)
        csd_fatal("MsrFile: decoy I-range slot out of bounds");
    const auto base = static_cast<std::uint32_t>(MsrAddr::DecoyIRangeBase);
    write(static_cast<MsrAddr>(base + 2 * idx), range.start);
    write(static_cast<MsrAddr>(base + 2 * idx + 1), range.end);
}

void
MsrFile::setDecoyDRange(unsigned idx, const AddrRange &range)
{
    if (idx >= numDecoyRanges)
        csd_fatal("MsrFile: decoy D-range slot out of bounds");
    const auto base = static_cast<std::uint32_t>(MsrAddr::DecoyDRangeBase);
    write(static_cast<MsrAddr>(base + 2 * idx), range.start);
    write(static_cast<MsrAddr>(base + 2 * idx + 1), range.end);
}

void
MsrFile::setTaintedPc(unsigned idx, Addr pc)
{
    if (idx >= numTaintedPcRegs)
        csd_fatal("MsrFile: tainted-PC slot out of bounds");
    const auto base = static_cast<std::uint32_t>(MsrAddr::TaintedPcBase);
    write(static_cast<MsrAddr>(base + idx), pc);
}

void
MsrFile::setWatchdogPeriod(Cycles period)
{
    write(MsrAddr::WatchdogPeriod, period);
}

} // namespace csd

/**
 * @file
 * Decoder-level performance counters (paper §III-E, "Performance
 * Counters" and "Profiling").
 *
 * Hardware performance counters are scarce and change layout every
 * generation; instrumentation-based profiling perturbs code and data
 * layout (heisenbugs). A context-sensitive decoder can instead count
 * events as it translates: unlimited simultaneous counters, stable
 * across generations, and **zero change to code or data layout** —
 * the translated flows are passed through untouched.
 *
 * DecoderProfiler is a Translator decorator: wrap any translator
 * (native or the full CSD) and read the event counts afterwards.
 */

#ifndef CSD_CSD_PROFILER_HH
#define CSD_CSD_PROFILER_HH

#include <array>
#include <map>

#include "common/stats.hh"
#include "decode/translator.hh"

namespace csd
{

/** Events countable at decode. */
enum class ProfileEvent : unsigned
{
    Instructions,
    Uops,           //!< static uops of the flows (loop-expanded)
    Loads,
    Stores,
    Branches,
    VectorOps,
    MicrosequencedFlows,
    FlagWriters,
    NumEvents,
};

/** A translator decorator that counts events without altering flows. */
class DecoderProfiler : public Translator
{
  public:
    explicit DecoderProfiler(Translator &inner) : inner_(inner) {}

    UopFlow
    translate(const MacroOp &op) override
    {
        UopFlow flow = inner_.translate(op);
        if (enabled_)
            account(op, flow);
        return flow;
    }

    unsigned contextId() const override { return inner_.contextId(); }
    void tick(Tick now) override { inner_.tick(now); }

    // Forward the predecoded-flow-cache protocol to the wrapped
    // translator, and keep counting exact on cache hits: a replayed
    // flow is still one decoded instruction's worth of events.
    std::uint64_t
    translationEpoch() const override
    {
        return inner_.translationEpoch();
    }

    bool
    translationStable(const MacroOp &op) const override
    {
        return inner_.translationStable(op);
    }

    void
    noteCachedTranslation(const MacroOp &op, const UopFlow &flow,
                          unsigned ctx) override
    {
        inner_.noteCachedTranslation(op, flow, ctx);
        if (enabled_)
            account(op, flow);
    }

    /** Counting can be toggled at run time (another context switch). */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    std::uint64_t
    count(ProfileEvent event) const
    {
        return counts_[static_cast<unsigned>(event)];
    }

    /** Per-PC translation counts (a decode-level hotness profile). */
    const std::map<Addr, std::uint64_t> &pcProfile() const
    {
        return pcCounts_;
    }

    /** Hottest @p n PCs, by translation count. */
    std::vector<std::pair<Addr, std::uint64_t>> hottest(std::size_t n)
        const;

    void reset();

  private:
    void account(const MacroOp &op, const UopFlow &flow);

    Translator &inner_;
    bool enabled_ = true;
    std::array<std::uint64_t,
               static_cast<unsigned>(ProfileEvent::NumEvents)>
        counts_{};
    std::map<Addr, std::uint64_t> pcCounts_;
};

} // namespace csd

#endif // CSD_CSD_PROFILER_HH

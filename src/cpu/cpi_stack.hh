/**
 * @file
 * CPI-stack accounting: classify every simulated cycle into one stall
 * bucket, with the invariant that the buckets sum exactly to the total
 * cycle count.
 *
 * The timing model is dependence-driven, so the accountant works on the
 * commit timeline: each processed micro-op advances accounted time to
 * its commit cycle, and the gap it opens is decomposed by walking the
 * uop's dispatch->issue->complete->commit constraint chain backwards
 * (commit width, then memory, then port, then operand, then ROB, then
 * exposed front-end stalls), crediting each constraint with the cycles
 * it demonstrably added and the remainder to the base bucket. Stall
 * cycles hidden under out-of-order overlap are therefore *not* counted
 * — only exposed cycles are, which is what makes the buckets sum to
 * the run's cycles with no residue.
 *
 * Micro-ops injected by context-sensitive decoding charge their whole
 * gap to a CSD-overhead bucket: decoy uops (all of them are extra
 * work) and the expansion uops of devectorized flows (those touching
 * decoder-temporary registers — the extract/insert glue and per-lane
 * scalar compute introduced by the vector->scalar rewrite).
 *
 * The accountant also keeps a per-PC profile (cycles, uops, per-bucket
 * stalls, taint hits, decoy uops) dumpable as JSON or CSV.
 */

#ifndef CSD_CPU_CPI_STACK_HH
#define CSD_CPU_CPI_STACK_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "cpu/backend.hh"
#include "uop/uop.hh"

namespace csd
{

/** CPI-stack buckets. Every simulated cycle lands in exactly one. */
enum class CpiBucket : unsigned
{
    Base,            //!< useful pipelined progress (incl. hidden stalls)
    FrontendL1i,     //!< exposed L1I-miss fetch stalls
    FrontendDecode,  //!< legacy-decode bandwidth + uop-cache switch cost
    BackendRob,      //!< dispatch held for a ROB entry
    BackendDep,      //!< issue held for source operands / serialization
    BackendPort,     //!< issue held for a free issue port
    BackendCommit,   //!< commit pushed a cycle by the commit width
    MemL1d,          //!< exposed L1D-hit load latency
    MemL2,           //!< exposed load latency served by the L2
    MemLlc,          //!< exposed load latency served by the LLC
    MemDram,         //!< exposed load latency served by DRAM
    CsdDecoy,        //!< cycles opened by decoy micro-ops
    CsdDevect,       //!< cycles opened by devectorization-expansion uops
    VpuWake,         //!< pipeline stalls on conventional-PG demand wakes
    NumBuckets,
};

constexpr unsigned numCpiBuckets =
    static_cast<unsigned>(CpiBucket::NumBuckets);

/** Stable machine-readable bucket name ("frontend_l1i", ...). */
const char *cpiBucketName(CpiBucket bucket);

/** The CPI-stack accountant. */
class CpiStack
{
  public:
    /** Per-uop attribution inputs beyond the back-end timing. */
    struct UopContext
    {
        Addr pc = invalidAddr;     //!< parent macro-op PC
        bool decoy = false;        //!< stealth-mode decoy uop
        bool devectExpansion = false; //!< devect glue/per-lane uop
        bool tainted = false;      //!< touches DIFT-tainted state
        Cycles feL1i = 0;          //!< fresh L1I fetch-stall cycles
        Cycles feDecode = 0;       //!< fresh legacy-decode/switch cycles
    };

    /** Per-PC aggregate profile row. */
    struct PcProfile
    {
        std::uint64_t uops = 0;
        std::uint64_t taintHits = 0;
        std::uint64_t decoyUops = 0;
        Cycles cycles = 0;  //!< commit-timeline cycles opened at this PC
        std::array<Cycles, numCpiBuckets> buckets{};
    };

    /** Start accounting at @p start_cycle (the enable-time cycle). */
    explicit CpiStack(Tick start_cycle = 0);

    /** Account one processed micro-op. */
    void accountUop(const BackEnd::UopTiming &timing,
                    const UopContext &ctx);

    /**
     * Account an externally imposed stall that advanced the simulator
     * clock to @p new_total (e.g. a VPU demand-wake stall).
     */
    void accountExternal(Tick new_total, CpiBucket bucket);

    /** Cycles attributed so far; equals the sum of all buckets. */
    Cycles accounted() const { return accountedUpTo_ - startCycle_; }

    /** Commit-timeline position the accountant has reached. */
    Tick accountedUpTo() const { return accountedUpTo_; }

    Cycles bucketCycles(CpiBucket bucket) const
    {
        return buckets_[static_cast<unsigned>(bucket)];
    }
    const std::array<Cycles, numCpiBuckets> &buckets() const
    {
        return buckets_;
    }

    /** Sum of every bucket (== accounted(), by construction). */
    Cycles totalBucketCycles() const;

    // --- per-PC profiles --------------------------------------------------

    const std::unordered_map<Addr, PcProfile> &pcProfiles() const
    {
        return profiles_;
    }

    /** PCs ordered by descending attributed cycles (ties: by PC). */
    std::vector<Addr> hottestPcs(std::size_t max_pcs = 0) const;

    /**
     * Dump the stack plus the per-PC table as JSON:
     * {"total_cycles":..., "buckets":{...}, "pcs":[{...}, ...]}.
     */
    void dumpJson(std::ostream &os, std::size_t max_pcs = 0) const;

    /** Dump the per-PC table as CSV (one bucket column each). */
    void dumpCsv(std::ostream &os, std::size_t max_pcs = 0) const;

  private:
    Tick startCycle_;
    Tick accountedUpTo_;
    std::array<Cycles, numCpiBuckets> buckets_{};
    std::unordered_map<Addr, PcProfile> profiles_;
    // Hot-loop memo: the profile row of the last accounted PC.
    Addr lastPc_ = invalidAddr;
    PcProfile *lastProfile_ = nullptr;
};

} // namespace csd

#endif // CSD_CPU_CPI_STACK_HH

#include "cpu/executor.hh"

// The per-uop bodies (agen, execScalarAlu, execScalarFp, execVector,
// execUop) are inline in executor.hh so the superblock fast path's
// threaded-code handlers can absorb them; only the flow-level loop
// lives here.

namespace csd
{

FlowResult
FunctionalExecutor::execute(const MacroOp &macro, const UopFlow &flow)
{
    FlowResult result;
    executeInto(macro, flow, result);
    return result;
}

void
FunctionalExecutor::executeInto(const MacroOp &macro, const UopFlow &flow,
                                FlowResult &result)
{
    result.dynUops.clear();  // keeps any spilled heap buffer
    result.nextPc = macro.nextPc();
    result.tookBranch = false;
    result.halted = false;
    result.dynUops.reserve(flow.expandedCount());

    auto run_range = [&](std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last && !result.halted; ++i) {
            const Uop &uop = flow.uops[i];
            DynUop dyn;
            dyn.uop = &uop;
            execUop(uop, dyn, result, macro.nextPc());
            result.dynUops.push_back(dyn);
        }
    };

    if (flow.loop) {
        const MicroLoop &loop = *flow.loop;
        if (loop.bodyEnd > flow.uops.size() ||
            loop.bodyStart > loop.bodyEnd) {
            csd_panic("FunctionalExecutor: malformed micro-loop");
        }
        run_range(0, loop.bodyStart);
        for (std::uint32_t trip = 0; trip < loop.tripCount; ++trip)
            run_range(loop.bodyStart, loop.bodyEnd);
        run_range(loop.bodyEnd, flow.uops.size());
    } else {
        run_range(0, flow.uops.size());
    }

    state_.pc = result.nextPc;
}

} // namespace csd

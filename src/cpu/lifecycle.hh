/**
 * @file
 * Instruction-grain lifecycle tracing: one record per dynamic micro-op
 * holding its pipeline timestamps (fetch, decode/deliver, dispatch,
 * issue, complete, commit) plus provenance (parent macro-op PC, decoy /
 * devectorized / fused / eliminated flags, DIFT taint, delivery
 * source), kept in a bounded ring buffer.
 *
 * Two export formats, both instruction-pipeline viewers:
 *  - gem5 O3PipeView text (`O3PipeView:fetch:...`), readable by gem5's
 *    util/o3-pipeview.py and loadable directly in Konata;
 *  - the Kanata log format (`Kanata\t0004` header), Konata's native
 *    input, which carries per-uop labels with the provenance flags.
 *
 * Runtime control (read by Simulation at construction):
 *  - CSD_LIFECYCLE=1             enable recording
 *  - CSD_LIFECYCLE_FILE=path     export at simulation teardown
 *                                (.kanata/.klog -> Kanata, else O3PipeView)
 *  - CSD_LIFECYCLE_CAPACITY=N    ring capacity (default 65536 records)
 *
 * Recording is off by default: the simulator's per-uop fast path pays
 * one pointer test when the tracer is not installed.
 */

#ifndef CSD_CPU_LIFECYCLE_HH
#define CSD_CPU_LIFECYCLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "decode/frontend.hh"
#include "uop/uop.hh"

namespace csd
{

/** Lifecycle of one dynamic micro-op. */
struct LifecycleRecord
{
    SeqNum seq = 0;          //!< dynamic sequence number (tracer-local)
    Uop uop;                 //!< static uop (copied: macroPc, flags, ...)
    Tick fetch = 0;          //!< front-end cycle the macro-op was fetched
    Tick decode = 0;         //!< fused slot delivered to the uop queue
    Tick dispatch = 0;
    Tick issue = 0;
    Tick complete = 0;
    Tick commit = 0;
    DeliverySource source = DeliverySource::Legacy;
    bool devectCtx = false;  //!< translated in the devectorized context
    bool tainted = false;    //!< reads or writes DIFT-tainted state
};

/** Bounded recorder of per-uop lifecycles with pipeline-viewer export. */
class LifecycleTracer
{
  public:
    explicit LifecycleTracer(std::size_t capacity = 1 << 16);

    /** Resize the ring (drops recorded lifecycles). */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return ring_.size(); }

    /** Record one lifecycle (assigns the record's seq). */
    void record(LifecycleRecord record);

    /** Records currently held (<= capacity). */
    std::size_t size() const { return count_; }

    /** Records overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    void clear();

    /** Records in record order (oldest first). */
    std::vector<LifecycleRecord> records() const;

    // --- export -----------------------------------------------------------

    /** gem5 O3PipeView text (one fetch..retire block per uop). */
    void exportO3PipeView(std::ostream &os) const;

    /** Konata-native Kanata log. */
    void exportKanata(std::ostream &os) const;

    /**
     * Export to @p path; format chosen by extension (.kanata / .klog
     * -> Kanata, anything else -> O3PipeView). Warns and returns false
     * on I/O error.
     */
    bool exportFile(const std::string &path) const;

    /** Label text used in exports: provenance flags + disassembly. */
    static std::string label(const LifecycleRecord &record);

  private:
    std::vector<LifecycleRecord> ring_;
    std::size_t start_ = 0;
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;
    SeqNum nextSeq_ = 0;
};

} // namespace csd

#endif // CSD_CPU_LIFECYCLE_HH

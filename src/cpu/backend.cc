#include "cpu/backend.hh"

#include "common/logging.hh"

namespace csd
{

BackEnd::BackEnd(const BackEndParams &params, MemHierarchy *mem)
    : params_(params), mem_(mem), stats_("backend")
{
    robRing_.assign(params_.robEntries, 0);
    stats_.addCounter("uops_executed", &uopsExecuted_,
                      "uops issued to functional units");
    stats_.addCounter("loads", &loadsExecuted_, "load uops executed");
    stats_.addCounter("stores", &storesExecuted_, "store uops executed");
    stats_.addCounter("vpu_uops", &vpuUops_, "uops executed on the VPU");
    stats_.addCounter("port_conflict_cycles", &portConflictCycles_,
                      "cycles lost waiting for an issue port");
}

const BackEnd::PortSet &
BackEnd::portsFor(FuClass fu)
{
    // Sandy Bridge-like port binding:
    //   p0: ALU, vector ALU/mul, divider
    //   p1: ALU, int mul, scalar FP
    //   p5: ALU, branch, vector ALU
    //   p2/p3: loads, p4: store
    // Indexed by FuClass; plain data so the per-uop lookup is one load.
    static constexpr PortSet table[] = {
        /* IntAlu   */ {3, {0, 1, 5}},
        /* IntMul   */ {1, {1}},
        /* Branch   */ {1, {5}},
        /* MemLoad  */ {2, {2, 3}},
        /* MemStore */ {1, {4}},
        /* VecAlu   */ {2, {0, 5}},
        /* VecMul   */ {1, {0}},
        /* VecFpDiv */ {1, {0}},
        /* FpScalar */ {1, {1}},
        /* None     */ {0, {}},
    };
    return table[static_cast<std::size_t>(fu)];
}

BackEnd::UopTiming
BackEnd::process(const Uop &uop, const DynUop &dyn, Tick deliver)
{
    UopTiming timing;

    // Source readiness (also used by eliminated uops).
    Tick ready = 0;
    auto src_ready = [&](const RegId &reg) {
        if (reg.valid())
            ready = std::max(ready, regReady_[reg.flatIndex()]);
    };
    src_ready(uop.src1);
    src_ready(uop.src2);
    src_ready(uop.src3);
    if (uop.readsFlags)
        ready = std::max(ready, regReady_[flagsReg().flatIndex()]);

    if (uop.eliminated) {
        // Stack-pointer tracking: the update happens at rename, costs
        // no slot and no execution; the result is renamed immediately.
        if (uop.dst.valid()) {
            regReady_[uop.dst.flatIndex()] =
                std::max(ready, deliver + params_.dispatchLatency);
        }
        timing.dispatch = deliver;
        timing.issue = deliver;
        timing.complete = deliver;
        timing.commit = lastCommit_;
        return timing;
    }

    // Dispatch: after rename depth, subject to ROB occupancy.
    Tick dispatch = deliver + params_.dispatchLatency;
    if (robCount_ >= params_.robEntries &&
        robRing_[robIdx_] > dispatch) {
        // The slot this uop reuses must have committed.
        timing.robStall = robRing_[robIdx_] - dispatch;
        dispatch = robRing_[robIdx_];
    }
    ready = std::max(ready, dispatch);

    // rdtsc is modeled serializing (rdtscp/lfence discipline): it
    // waits for all older uops to commit, and younger uops cannot
    // begin until it completes — so timing spies genuinely observe
    // their reload latency.
    ready = std::max(ready, serializeAfter_);
    if (uop.op == MicroOpcode::ReadCycles)
        ready = std::max(ready, lastCommit_);
    if (ready > dispatch)
        timing.depStall = ready - dispatch;

    // Issue: earliest among candidate ports.
    Tick issue = ready;
    const FuClass fu = fuClass(uop);
    const PortSet &ports = portsFor(fu);
    if (ports.count > 0) {
        unsigned best = ports.ports[0];
        for (unsigned i = 1; i < ports.count; ++i) {
            const unsigned port = ports.ports[i];
            if (portFree_[port] < portFree_[best])
                best = port;
        }
        if (portFree_[best] > issue) {
            timing.portStall = portFree_[best] - issue;
            portConflictCycles_ += portFree_[best] - issue;
            issue = portFree_[best];
        }
        const bool pipelined = fu != FuClass::VecFpDiv;
        portFree_[best] = issue + (pipelined ? 1 : fuLatency(uop));
    }

    // Complete.
    Tick complete;
    if (uop.isLoad()) {
        ++loadsExecuted_;
        Cycles latency = 4;
        Cycles l1d_hit = 4;
        timing.memLevel = 1;
        if (mem_) {
            const auto result = uop.instrFetch
                ? mem_->fetchInstr(dyn.effAddr)
                : mem_->readData(dyn.effAddr);
            latency = result.latency;
            l1d_hit = uop.instrFetch ? mem_->params().l1i.hitLatency
                                     : mem_->params().l1d.hitLatency;
            timing.memLevel =
                static_cast<std::uint8_t>(result.levelHit);
        }
        timing.l1dLatency = std::min(latency, l1d_hit);
        if (latency > l1d_hit)
            timing.memStall = latency - l1d_hit;
        complete = issue + latency;
    } else if (uop.isStore()) {
        ++storesExecuted_;
        if (mem_)
            mem_->writeData(dyn.effAddr);
        // Stores retire into the store queue; no consumer waits on them.
        complete = issue + 1;
    } else if (uop.op == MicroOpcode::CacheFlush) {
        if (mem_)
            mem_->flush(dyn.effAddr);
        complete = issue + 40;  // clflush is a slow, serializing-ish op
    } else {
        complete = issue + fuLatency(uop);
    }

    if (uop.dst.valid())
        regReady_[uop.dst.flatIndex()] = complete;
    if (uop.writesFlags)
        regReady_[flagsReg().flatIndex()] = complete;
    if (uop.op == MicroOpcode::ReadCycles)
        serializeAfter_ = complete;
    if (onVpu(uop))
        ++vpuUops_;
    ++uopsExecuted_;

    // In-order commit with bounded width.
    Tick commit = std::max(complete, lastCommit_);
    if (commit == lastCommitCycle_ &&
        commitsThisCycle_ >= params_.commitWidth) {
        commit += 1;
        timing.commitWidthStall = true;
    }
    if (commit != lastCommitCycle_) {
        lastCommitCycle_ = commit;
        commitsThisCycle_ = 1;
    } else {
        ++commitsThisCycle_;
    }
    lastCommit_ = commit;

    // ROB ring bookkeeping.
    robRing_[robIdx_] = commit;
    if (++robIdx_ == params_.robEntries)
        robIdx_ = 0;
    if (robCount_ < params_.robEntries)
        ++robCount_;

    timing.dispatch = dispatch;
    timing.issue = issue;
    timing.complete = complete;
    timing.commit = commit;
    return timing;
}

} // namespace csd

#include "cpu/cpi_stack.hh"

#include <algorithm>

namespace csd
{

const char *
cpiBucketName(CpiBucket bucket)
{
    switch (bucket) {
      case CpiBucket::Base:           return "base";
      case CpiBucket::FrontendL1i:    return "frontend_l1i";
      case CpiBucket::FrontendDecode: return "frontend_decode";
      case CpiBucket::BackendRob:     return "backend_rob";
      case CpiBucket::BackendDep:     return "backend_dep";
      case CpiBucket::BackendPort:    return "backend_port";
      case CpiBucket::BackendCommit:  return "backend_commit";
      case CpiBucket::MemL1d:         return "mem_l1d";
      case CpiBucket::MemL2:          return "mem_l2";
      case CpiBucket::MemLlc:         return "mem_llc";
      case CpiBucket::MemDram:        return "mem_dram";
      case CpiBucket::CsdDecoy:       return "csd_decoy";
      case CpiBucket::CsdDevect:      return "csd_devect";
      case CpiBucket::VpuWake:        return "vpu_wake";
      case CpiBucket::NumBuckets:     break;
    }
    return "?";
}

CpiStack::CpiStack(Tick start_cycle)
    : startCycle_(start_cycle), accountedUpTo_(start_cycle)
{
}

void
CpiStack::accountUop(const BackEnd::UopTiming &timing,
                     const UopContext &ctx)
{
    // Consecutive uops almost always share a parent macro-op PC (one
    // flow is several uops), so memoize the last profile row instead
    // of re-hashing per uop. References into an unordered_map survive
    // insertion of other keys, so the cached pointer stays valid.
    if (ctx.pc != lastPc_ || lastProfile_ == nullptr) {
        lastProfile_ = &profiles_[ctx.pc];
        lastPc_ = ctx.pc;
    }
    PcProfile &profile = *lastProfile_;
    ++profile.uops;
    if (ctx.tainted)
        ++profile.taintHits;
    if (ctx.decoy)
        ++profile.decoyUops;

    if (timing.commit <= accountedUpTo_)
        return;  // fully overlapped; opens no new cycles
    Cycles remaining = timing.commit - accountedUpTo_;
    accountedUpTo_ = timing.commit;
    profile.cycles += remaining;

    const auto take = [&](CpiBucket bucket, Cycles amount) {
        if (remaining == 0 || amount == 0)
            return;
        const Cycles credited = std::min(remaining, amount);
        buckets_[static_cast<unsigned>(bucket)] += credited;
        profile.buckets[static_cast<unsigned>(bucket)] += credited;
        remaining -= credited;
    };

    // CSD-injected work is pure overhead: every cycle such a uop opens
    // on the commit timeline is charged to its CSD bucket, whatever
    // micro-architectural constraint produced it.
    if (ctx.decoy) {
        take(CpiBucket::CsdDecoy, remaining);
        return;
    }
    if (ctx.devectExpansion) {
        take(CpiBucket::CsdDevect, remaining);
        return;
    }

    // Walk the constraint chain from commit backwards; each stage is
    // credited at most the cycles it added, capped by what is left of
    // the gap (overlapped portions stay hidden).
    take(CpiBucket::BackendCommit, timing.commitWidthStall ? 1 : 0);
    switch (timing.memLevel) {
      case 2: take(CpiBucket::MemL2, timing.memStall); break;
      case 3: take(CpiBucket::MemLlc, timing.memStall); break;
      case 4: take(CpiBucket::MemDram, timing.memStall); break;
      default: break;
    }
    if (timing.memLevel >= 1)
        take(CpiBucket::MemL1d, timing.l1dLatency);
    take(CpiBucket::BackendPort, timing.portStall);
    take(CpiBucket::BackendDep, timing.depStall);
    take(CpiBucket::BackendRob, timing.robStall);
    take(CpiBucket::FrontendL1i, ctx.feL1i);
    take(CpiBucket::FrontendDecode, ctx.feDecode);
    take(CpiBucket::Base, remaining);
}

void
CpiStack::accountExternal(Tick new_total, CpiBucket bucket)
{
    if (new_total <= accountedUpTo_)
        return;
    buckets_[static_cast<unsigned>(bucket)] += new_total - accountedUpTo_;
    accountedUpTo_ = new_total;
}

Cycles
CpiStack::totalBucketCycles() const
{
    Cycles total = 0;
    for (Cycles cycles : buckets_)
        total += cycles;
    return total;
}

std::vector<Addr>
CpiStack::hottestPcs(std::size_t max_pcs) const
{
    std::vector<Addr> pcs;
    pcs.reserve(profiles_.size());
    for (const auto &[pc, profile] : profiles_)
        pcs.push_back(pc);
    std::sort(pcs.begin(), pcs.end(), [this](Addr a, Addr b) {
        const Cycles ca = profiles_.at(a).cycles;
        const Cycles cb = profiles_.at(b).cycles;
        return ca != cb ? ca > cb : a < b;
    });
    if (max_pcs != 0 && pcs.size() > max_pcs)
        pcs.resize(max_pcs);
    return pcs;
}

void
CpiStack::dumpJson(std::ostream &os, std::size_t max_pcs) const
{
    os << "{\n  \"total_cycles\": " << accounted() << ",\n  \"buckets\": {";
    for (unsigned i = 0; i < numCpiBuckets; ++i) {
        os << (i ? ", " : "") << '"'
           << cpiBucketName(static_cast<CpiBucket>(i)) << "\": "
           << buckets_[i];
    }
    os << "},\n  \"pcs\": [\n";
    const auto pcs = hottestPcs(max_pcs);
    for (std::size_t n = 0; n < pcs.size(); ++n) {
        const PcProfile &profile = profiles_.at(pcs[n]);
        os << "    {\"pc\": " << pcs[n] << ", \"uops\": " << profile.uops
           << ", \"cycles\": " << profile.cycles
           << ", \"taint_hits\": " << profile.taintHits
           << ", \"decoy_uops\": " << profile.decoyUops
           << ", \"buckets\": {";
        for (unsigned i = 0; i < numCpiBuckets; ++i) {
            os << (i ? ", " : "") << '"'
               << cpiBucketName(static_cast<CpiBucket>(i)) << "\": "
               << profile.buckets[i];
        }
        os << "}}" << (n + 1 < pcs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
CpiStack::dumpCsv(std::ostream &os, std::size_t max_pcs) const
{
    os << "pc,uops,cycles,taint_hits,decoy_uops";
    for (unsigned i = 0; i < numCpiBuckets; ++i)
        os << ',' << cpiBucketName(static_cast<CpiBucket>(i));
    os << "\n";
    for (Addr pc : hottestPcs(max_pcs)) {
        const PcProfile &profile = profiles_.at(pc);
        os << pc << ',' << profile.uops << ',' << profile.cycles << ','
           << profile.taintHits << ',' << profile.decoyUops;
        for (unsigned i = 0; i < numCpiBuckets; ++i)
            os << ',' << profile.buckets[i];
        os << "\n";
    }
}

} // namespace csd

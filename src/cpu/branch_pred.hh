/**
 * @file
 * Branch prediction: gshare direction predictor + BTB + return address
 * stack (Table I baseline).
 */

#ifndef CSD_CPU_BRANCH_PRED_HH
#define CSD_CPU_BRANCH_PRED_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/macroop.hh"

namespace csd
{

/** Branch predictor configuration. */
struct BranchPredParams
{
    unsigned gshareEntries = 4096;  //!< 2-bit counters
    unsigned historyBits = 12;
    unsigned btbEntries = 1024;
    unsigned rasEntries = 16;
};

/** gshare + BTB + RAS. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredParams &params = {});

    /** Outcome of a prediction for one dynamic branch. */
    struct Prediction
    {
        bool taken = false;
        Addr target = invalidAddr;  //!< invalid if BTB missed
    };

    /** Predict @p op; does not update state. */
    Prediction predict(const MacroOp &op);

    /**
     * Train with the resolved outcome and report whether the
     * prediction was correct (direction and target).
     */
    bool update(const MacroOp &op, const Prediction &pred, bool taken,
                Addr target);

    StatGroup &stats() { return stats_; }

    double
    accuracy() const
    {
        const auto total = lookups_.value();
        return total == 0
            ? 1.0
            : 1.0 - static_cast<double>(mispredicts_.value()) / total;
    }

  private:
    unsigned gshareIndex(Addr pc) const;
    unsigned btbIndex(Addr pc) const;

    BranchPredParams params_;
    std::vector<std::uint8_t> counters_;  //!< 2-bit saturating
    struct BtbEntry
    {
        Addr pc = invalidAddr;
        Addr target = invalidAddr;
    };
    std::vector<BtbEntry> btb_;
    std::vector<Addr> ras_;
    std::uint64_t history_ = 0;

    StatGroup stats_;
    Counter lookups_;
    Counter mispredicts_;
    Counter btbMisses_;
    Counter rasUsed_;
};

} // namespace csd

#endif // CSD_CPU_BRANCH_PRED_HH

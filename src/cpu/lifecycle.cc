#include "cpu/lifecycle.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace csd
{

namespace
{

const char *
sourceName(DeliverySource source)
{
    switch (source) {
      case DeliverySource::UopCache: return "uc";
      case DeliverySource::Legacy:   return "dec";
      case DeliverySource::Msrom:    return "ms";
      case DeliverySource::Lsd:      return "lsd";
    }
    return "?";
}

} // namespace

LifecycleTracer::LifecycleTracer(std::size_t capacity)
{
    setCapacity(capacity);
}

void
LifecycleTracer::setCapacity(std::size_t capacity)
{
    if (capacity == 0)
        csd_fatal("LifecycleTracer: capacity must be positive");
    ring_.assign(capacity, LifecycleRecord{});
    start_ = 0;
    count_ = 0;
    dropped_ = 0;
}

void
LifecycleTracer::record(LifecycleRecord record)
{
    record.seq = nextSeq_++;
    // Normalize to a monotone per-uop timeline: eliminated and fused
    // uops carry borrowed timestamps (their leader's slot, the previous
    // commit) that can run backwards, which pipeline viewers reject.
    record.decode = std::max(record.decode, record.fetch);
    record.dispatch = std::max(record.dispatch, record.decode);
    record.issue = std::max(record.issue, record.dispatch);
    record.complete = std::max(record.complete, record.issue);
    record.commit = std::max(record.commit, record.complete);
    if (count_ < ring_.size()) {
        ring_[(start_ + count_) % ring_.size()] = std::move(record);
        ++count_;
    } else {
        ring_[start_] = std::move(record);
        start_ = (start_ + 1) % ring_.size();
        ++dropped_;
    }
}

void
LifecycleTracer::clear()
{
    start_ = 0;
    count_ = 0;
    dropped_ = 0;
}

std::vector<LifecycleRecord>
LifecycleTracer::records() const
{
    std::vector<LifecycleRecord> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start_ + i) % ring_.size()]);
    return out;
}

std::string
LifecycleTracer::label(const LifecycleRecord &record)
{
    std::ostringstream os;
    os << "0x" << std::hex << record.uop.macroPc << std::dec << "."
       << static_cast<unsigned>(record.uop.uopIdx) << " ["
       << sourceName(record.source);
    if (record.uop.decoy)
        os << " decoy";
    if (record.devectCtx)
        os << " devect";
    if (record.uop.fusedLeader)
        os << " fused";
    if (record.uop.eliminated)
        os << " elim";
    if (record.tainted)
        os << " taint";
    os << "] " << toString(record.uop);
    return os.str();
}

void
LifecycleTracer::exportO3PipeView(std::ostream &os) const
{
    for (std::size_t i = 0; i < count_; ++i) {
        const LifecycleRecord &r = ring_[(start_ + i) % ring_.size()];
        os << "O3PipeView:fetch:" << r.fetch << ":0x" << std::hex
           << r.uop.macroPc << std::dec << ":"
           << static_cast<unsigned>(r.uop.uopIdx) << ":" << r.seq << ":"
           << label(r) << "\n";
        os << "O3PipeView:decode:" << r.decode << "\n";
        os << "O3PipeView:rename:" << r.decode << "\n";
        os << "O3PipeView:dispatch:" << r.dispatch << "\n";
        os << "O3PipeView:issue:" << r.issue << "\n";
        os << "O3PipeView:complete:" << r.complete << "\n";
        os << "O3PipeView:retire:" << r.commit << ":store:"
           << (r.uop.isStore() ? r.complete : 0) << "\n";
    }
}

void
LifecycleTracer::exportKanata(std::ostream &os) const
{
    // Kanata requires a cycle-ordered command stream; collect (cycle,
    // line) pairs per record, then stable-sort so same-cycle commands
    // keep per-uop order.
    struct Command
    {
        Tick cycle;
        std::string line;
    };
    std::vector<Command> commands;
    commands.reserve(count_ * 8);

    for (std::size_t i = 0; i < count_; ++i) {
        const LifecycleRecord &r = ring_[(start_ + i) % ring_.size()];
        const SeqNum id = r.seq;
        const auto cmd = [&](Tick cycle, std::string line) {
            commands.push_back({cycle, std::move(line)});
        };
        std::ostringstream decl;
        decl << "I\t" << id << "\t" << id << "\t0";
        cmd(r.fetch, decl.str());
        cmd(r.fetch, "L\t" + std::to_string(id) + "\t0\t" + label(r));
        cmd(r.fetch, "S\t" + std::to_string(id) + "\t0\tF");

        // Stage boundaries; zero-length stages are skipped.
        struct Stage
        {
            Tick at;
            const char *name;
        };
        const Stage stages[] = {{r.decode, "D"},
                                {r.dispatch, "W"},
                                {r.issue, "X"},
                                {r.complete, "C"}};
        const char *open = "F";
        Tick open_at = r.fetch;
        for (const Stage &stage : stages) {
            if (stage.at <= open_at)
                continue;
            cmd(stage.at, std::string("E\t") + std::to_string(id) +
                              "\t0\t" + open);
            cmd(stage.at, std::string("S\t") + std::to_string(id) +
                              "\t0\t" + stage.name);
            open = stage.name;
            open_at = stage.at;
        }
        cmd(std::max(r.commit, open_at),
            std::string("E\t") + std::to_string(id) + "\t0\t" + open);
        cmd(std::max(r.commit, open_at),
            "R\t" + std::to_string(id) + "\t" + std::to_string(id) +
                "\t0");
    }

    std::stable_sort(commands.begin(), commands.end(),
                     [](const Command &a, const Command &b) {
                         return a.cycle < b.cycle;
                     });

    os << "Kanata\t0004\n";
    Tick current = commands.empty() ? 0 : commands.front().cycle;
    os << "C=\t" << current << "\n";
    for (const Command &command : commands) {
        if (command.cycle > current) {
            os << "C\t" << command.cycle - current << "\n";
            current = command.cycle;
        }
        os << command.line << "\n";
    }
}

bool
LifecycleTracer::exportFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("LifecycleTracer: cannot open ", path);
        return false;
    }
    const auto has_suffix = [&](const std::string &suffix) {
        return path.size() >= suffix.size() &&
               path.compare(path.size() - suffix.size(), suffix.size(),
                            suffix) == 0;
    };
    if (has_suffix(".kanata") || has_suffix(".klog"))
        exportKanata(os);
    else
        exportO3PipeView(os);
    return os.good();
}

} // namespace csd

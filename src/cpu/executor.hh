/**
 * @file
 * Functional micro-op executor.
 *
 * Executes one translated flow against the architectural state and
 * returns per-uop dynamic annotations (effective addresses, branch
 * outcomes) that the cache-level and pipeline-level timing models
 * consume. The same executor runs native, stealth-mode, and
 * devectorized translations, which is what lets the test suite prove
 * custom translations preserve architectural semantics.
 */

#ifndef CSD_CPU_EXECUTOR_HH
#define CSD_CPU_EXECUTOR_HH

#include "common/small_vector.hh"
#include "cpu/arch_state.hh"
#include "uop/flow.hh"

namespace csd
{

/** Dynamic record of one executed micro-op. */
struct DynUop
{
    const Uop *uop = nullptr;    //!< static uop (points into the flow)
    Addr effAddr = invalidAddr;  //!< effective address for memory uops
    bool taken = false;          //!< branch outcome
};

/**
 * Container for a flow's executed uops. Sized for typical flows plus a
 * small fusion/branch tail; decoy micro-loop expansions (dozens of
 * trips) spill to the heap, which execute() pre-reserves in one shot.
 */
using DynUopVec = SmallVector<DynUop, 8>;

/** Result of executing one macro-op's flow. */
struct FlowResult
{
    DynUopVec dynUops;           //!< expanded, in execution order
    Addr nextPc = invalidAddr;   //!< PC after the macro-op
    bool tookBranch = false;     //!< control left the fall-through path
    bool halted = false;
};

/** Executes micro-op flows functionally. */
class FunctionalExecutor
{
  public:
    explicit FunctionalExecutor(ArchState &state) : state_(state) {}

    /**
     * Execute @p flow (the translation of @p macro). Updates state_,
     * including PC.
     */
    FlowResult execute(const MacroOp &macro, const UopFlow &flow);

    /**
     * Same, but reuse @p result's dynUops storage across calls (the
     * simulator's hot loop executes millions of flows; recycling the
     * heap buffer of a once-spilled DynUopVec avoids reallocating it
     * every macro-op).
     */
    void executeInto(const MacroOp &macro, const UopFlow &flow,
                     FlowResult &result);

  private:
    void execUop(const Uop &uop, DynUop &dyn, FlowResult &result,
                 Addr fall_through);
    Addr agen(const Uop &uop) const;
    std::uint64_t aluSrc2(const Uop &uop) const;
    void execScalarAlu(const Uop &uop);
    void execScalarFp(const Uop &uop);
    void execVector(const Uop &uop);

    ArchState &state_;
};

} // namespace csd

#endif // CSD_CPU_EXECUTOR_HH

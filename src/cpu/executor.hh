/**
 * @file
 * Functional micro-op executor.
 *
 * Executes one translated flow against the architectural state and
 * returns per-uop dynamic annotations (effective addresses, branch
 * outcomes) that the cache-level and pipeline-level timing models
 * consume. The same executor runs native, stealth-mode, and
 * devectorized translations, which is what lets the test suite prove
 * custom translations preserve architectural semantics.
 */

#ifndef CSD_CPU_EXECUTOR_HH
#define CSD_CPU_EXECUTOR_HH

#include <bit>
#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/small_vector.hh"
#include "cpu/arch_state.hh"
#include "uop/flow.hh"

namespace csd
{

/** Dynamic record of one executed micro-op. */
struct DynUop
{
    const Uop *uop = nullptr;    //!< static uop (points into the flow)
    Addr effAddr = invalidAddr;  //!< effective address for memory uops
    bool taken = false;          //!< branch outcome
};

/**
 * Container for a flow's executed uops. Sized for typical flows plus a
 * small fusion/branch tail; decoy micro-loop expansions (dozens of
 * trips) spill to the heap, which execute() pre-reserves in one shot.
 */
using DynUopVec = SmallVector<DynUop, 8>;

/** Result of executing one macro-op's flow. */
struct FlowResult
{
    DynUopVec dynUops;           //!< expanded, in execution order
    Addr nextPc = invalidAddr;   //!< PC after the macro-op
    bool tookBranch = false;     //!< control left the fall-through path
    bool halted = false;
};

/** Executes micro-op flows functionally. */
class FunctionalExecutor
{
  public:
    explicit FunctionalExecutor(ArchState &state) : state_(state) {}

    /**
     * Execute @p flow (the translation of @p macro). Updates state_,
     * including PC.
     */
    FlowResult execute(const MacroOp &macro, const UopFlow &flow);

    /**
     * Same, but reuse @p result's dynUops storage across calls (the
     * simulator's hot loop executes millions of flows; recycling the
     * heap buffer of a once-spilled DynUopVec avoids reallocating it
     * every macro-op).
     */
    void executeInto(const MacroOp &macro, const UopFlow &flow,
                     FlowResult &result);

    // --- uop-grain entry points ------------------------------------------
    //
    // The superblock fast path (sim/fastpath.cc) executes pre-resolved
    // threaded-code streams and calls straight into the per-category
    // handlers below, bypassing execUop()'s opcode dispatch. They are
    // the same functions the interpreter uses, so both tiers share one
    // definition of every uop's semantics. The bodies live in this
    // header (below the class) so the fast path's dispatch loop can
    // inline them; the semantics are defined exactly once either way.

// The per-category handlers are forced inline: each sits behind one
// call site per dispatch loop, but the loops (execUop's switch, the
// fast path's threaded code) are big enough that the inliner's growth
// budget would otherwise leave a per-uop call on the hottest edge in
// cache-only simulation.
#if defined(__GNUC__) || defined(__clang__)
#define CSD_EXEC_INLINE __attribute__((always_inline)) inline
#else
#define CSD_EXEC_INLINE inline
#endif

    /** Execute one uop (full opcode dispatch). Updates state_. */
    void execUop(const Uop &uop, DynUop &dyn, FlowResult &result,
                 Addr fall_through);

    /** Effective address of a memory/LEA uop. */
    CSD_EXEC_INLINE Addr agen(const Uop &uop) const;

    /** Scalar integer ALU ops (Add..Lea). */
    CSD_EXEC_INLINE void execScalarAlu(const Uop &uop);

    /** Scalar float ops (FAddS..FMulSd). */
    CSD_EXEC_INLINE void execScalarFp(const Uop &uop);

    /** 128-bit vector ops (VAdd..VInsert). */
    CSD_EXEC_INLINE void execVector(const Uop &uop);

  private:
    std::uint64_t aluSrc2(const Uop &uop) const;

    ArchState &state_;
};

namespace exec_detail
{

constexpr unsigned
widthBits(OpWidth width)
{
    return width == OpWidth::W32 ? 32 : 64;
}

constexpr std::uint64_t
maskToWidth(std::uint64_t val, OpWidth width)
{
    return width == OpWidth::W32 ? (val & 0xffffffffull) : val;
}

constexpr bool
signBit(std::uint64_t val, OpWidth width)
{
    return bit(val, widthBits(width) - 1);
}

/** Set zf/sf from a width-masked result; leaves cf/of untouched. */
inline void
setZfSf(RFlags &flags, std::uint64_t result, OpWidth width)
{
    flags.zf = maskToWidth(result, width) == 0;
    flags.sf = signBit(result, width);
}

} // namespace exec_detail

inline Addr
FunctionalExecutor::agen(const Uop &uop) const
{
    Addr addr = static_cast<Addr>(uop.disp);
    if (uop.src1.valid())
        addr += state_.readInt(uop.src1);
    if (uop.src2.valid() && uop.isMem())
        addr += state_.readInt(uop.src2) * uop.scale;
    return addr;
}

inline std::uint64_t
FunctionalExecutor::aluSrc2(const Uop &uop) const
{
    if (uop.immData)
        return static_cast<std::uint64_t>(uop.imm);
    if (uop.src2.valid())
        return state_.readInt(uop.src2);
    return 0;
}

inline void
FunctionalExecutor::execScalarAlu(const Uop &uop)
{
    using exec_detail::maskToWidth;
    using exec_detail::signBit;
    using exec_detail::widthBits;

    const OpWidth width = uop.width;
    const std::uint64_t a = maskToWidth(
        uop.src1.valid() ? state_.readInt(uop.src1) : 0, width);
    const std::uint64_t b = maskToWidth(aluSrc2(uop), width);
    RFlags &flags = state_.flags;

    std::uint64_t result = 0;
    bool write_result = true;
    bool new_cf = flags.cf;
    bool new_of = flags.of;

    switch (uop.op) {
      case MicroOpcode::Add: {
        result = maskToWidth(a + b, width);
        new_cf = result < a;
        new_of = signBit(a, width) == signBit(b, width) &&
                 signBit(result, width) != signBit(a, width);
        break;
      }
      case MicroOpcode::Adc: {
        const std::uint64_t carry_in = flags.cf ? 1 : 0;
        result = maskToWidth(a + b + carry_in, width);
        new_cf = result < a || (carry_in && result == a);
        new_of = signBit(a, width) == signBit(b, width) &&
                 signBit(result, width) != signBit(a, width);
        break;
      }
      case MicroOpcode::Sub:
      case MicroOpcode::Cmp: {
        result = maskToWidth(a - b, width);
        new_cf = a < b;
        new_of = signBit(a, width) != signBit(b, width) &&
                 signBit(result, width) != signBit(a, width);
        write_result = uop.op == MicroOpcode::Sub;
        break;
      }
      case MicroOpcode::Sbb: {
        const std::uint64_t borrow_in = flags.cf ? 1 : 0;
        result = maskToWidth(a - b - borrow_in, width);
        new_cf = a < b + borrow_in || (b == maskToWidth(~0ull, width) &&
                                       borrow_in);
        new_of = signBit(a, width) != signBit(b, width) &&
                 signBit(result, width) != signBit(a, width);
        break;
      }
      case MicroOpcode::And:
      case MicroOpcode::Test: {
        result = a & b;
        new_cf = false;
        new_of = false;
        write_result = uop.op == MicroOpcode::And;
        break;
      }
      case MicroOpcode::Or: {
        result = a | b;
        new_cf = false;
        new_of = false;
        break;
      }
      case MicroOpcode::Xor: {
        result = a ^ b;
        new_cf = false;
        new_of = false;
        break;
      }
      case MicroOpcode::Shl: {
        const unsigned count = b & (widthBits(width) - 1);
        result = count ? maskToWidth(a << count, width) : a;
        if (count)
            new_cf = bit(a, widthBits(width) - count);
        break;
      }
      case MicroOpcode::Shr: {
        const unsigned count = b & (widthBits(width) - 1);
        result = count ? (a >> count) : a;
        if (count)
            new_cf = bit(a, count - 1);
        break;
      }
      case MicroOpcode::Sar: {
        const unsigned count = b & (widthBits(width) - 1);
        if (count == 0) {
            result = a;
        } else if (width == OpWidth::W32) {
            result = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(a) >> count);
            new_cf = bit(a, count - 1);
        } else {
            result = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(a) >> count);
            new_cf = bit(a, count - 1);
        }
        break;
      }
      case MicroOpcode::Rol: {
        const unsigned nbits = widthBits(width);
        const unsigned count = b & (nbits - 1);
        result = count
            ? maskToWidth((a << count) | (a >> (nbits - count)), width)
            : a;
        new_cf = bit(result, 0);
        break;
      }
      case MicroOpcode::Ror: {
        const unsigned nbits = widthBits(width);
        const unsigned count = b & (nbits - 1);
        result = count
            ? maskToWidth((a >> count) | (a << (nbits - count)), width)
            : a;
        new_cf = signBit(result, width);
        break;
      }
      case MicroOpcode::Mul: {
        if (width == OpWidth::W32) {
            const std::uint64_t full = a * b;
            result = full & 0xffffffffull;
            new_cf = new_of = (full >> 32) != 0;
        } else {
            const unsigned __int128 full =
                static_cast<unsigned __int128>(a) * b;
            result = static_cast<std::uint64_t>(full);
            new_cf = new_of = (full >> 64) != 0;
        }
        break;
      }
      case MicroOpcode::Not: {
        result = maskToWidth(~a, width);
        break;
      }
      case MicroOpcode::Neg: {
        result = maskToWidth(0 - a, width);
        new_cf = a != 0;
        new_of = signBit(a, width) && signBit(result, width);
        break;
      }
      case MicroOpcode::Mov: {
        result = state_.readInt(uop.src1);
        break;
      }
      case MicroOpcode::LoadImm: {
        result = static_cast<std::uint64_t>(uop.imm);
        break;
      }
      case MicroOpcode::Lea: {
        result = agen(uop);
        break;
      }
      default:
        csd_panic("execScalarAlu: unhandled micro-opcode ",
                  static_cast<int>(uop.op));
    }

    if (uop.writesFlags) {
        exec_detail::setZfSf(flags, result, width);
        flags.cf = new_cf;
        flags.of = new_of;
    }

    if (write_result && uop.dst.valid())
        state_.writeInt(uop.dst, maskToWidth(result, width));
}

inline void
FunctionalExecutor::execScalarFp(const Uop &uop)
{
    const std::uint64_t a = state_.readInt(uop.src1);
    const std::uint64_t b = uop.immData
        ? static_cast<std::uint64_t>(uop.imm)
        : (uop.src2.valid() ? state_.readInt(uop.src2) : 0);

    std::uint64_t result = 0;
    switch (uop.op) {
      case MicroOpcode::FAddS: case MicroOpcode::FSubS:
      case MicroOpcode::FMulS: case MicroOpcode::FDivS:
      case MicroOpcode::FSqrtS: {
        const float fa =
            std::bit_cast<float>(static_cast<std::uint32_t>(a));
        const float fb =
            std::bit_cast<float>(static_cast<std::uint32_t>(b));
        float fr = 0.0f;
        switch (uop.op) {
          case MicroOpcode::FAddS:  fr = fa + fb; break;
          case MicroOpcode::FSubS:  fr = fa - fb; break;
          case MicroOpcode::FMulS:  fr = fa * fb; break;
          case MicroOpcode::FDivS:  fr = fa / fb; break;
          case MicroOpcode::FSqrtS: fr = std::sqrt(fa); break;
          default: break;
        }
        result = std::bit_cast<std::uint32_t>(fr);
        break;
      }
      case MicroOpcode::FAddSd: case MicroOpcode::FSubSd:
      case MicroOpcode::FMulSd: {
        const double fa = std::bit_cast<double>(a);
        const double fb = std::bit_cast<double>(b);
        double fr = 0.0;
        switch (uop.op) {
          case MicroOpcode::FAddSd: fr = fa + fb; break;
          case MicroOpcode::FSubSd: fr = fa - fb; break;
          case MicroOpcode::FMulSd: fr = fa * fb; break;
          default: break;
        }
        result = std::bit_cast<std::uint64_t>(fr);
        break;
      }
      default:
        csd_panic("execScalarFp: unhandled micro-opcode");
    }
    state_.writeInt(uop.dst, result);
}

inline void
FunctionalExecutor::execVector(const Uop &uop)
{
    if (uop.op == MicroOpcode::VInsert) {
        Vec128 vec = state_.readVecReg(uop.dst);
        vec.setLane(8, static_cast<unsigned>(uop.imm) & 1,
                    state_.readInt(uop.src1));
        state_.writeVecReg(uop.dst, vec);
        return;
    }
    if (uop.op == MicroOpcode::VMov) {
        state_.writeVecReg(uop.dst, state_.readVecReg(uop.src1));
        return;
    }

    const Vec128 &a = state_.readVecReg(uop.src1);
    const unsigned lane = uop.lane;
    const unsigned num_lanes = 16 / lane;
    const std::uint64_t lane_mask = lane >= 8
        ? ~0ull
        : ((1ull << (8 * lane)) - 1);
    Vec128 result;

    auto binary_int = [&](auto fn) {
        const Vec128 &b = state_.readVecReg(uop.src2);
        for (unsigned i = 0; i < num_lanes; ++i)
            result.setLane(lane, i,
                           fn(a.lane(lane, i), b.lane(lane, i)) & lane_mask);
    };

    auto unary_shift = [&](bool left) {
        const unsigned count = static_cast<unsigned>(uop.imm);
        for (unsigned i = 0; i < num_lanes; ++i) {
            const std::uint64_t val = a.lane(lane, i);
            std::uint64_t out = 0;
            if (count < 8u * lane)
                out = (left ? (val << count) : (val >> count)) & lane_mask;
            result.setLane(lane, i, out);
        }
    };

    auto binary_f32 = [&](auto fn) {
        const Vec128 &b = state_.readVecReg(uop.src2);
        for (unsigned i = 0; i < 4; ++i) {
            const float fa = std::bit_cast<float>(
                static_cast<std::uint32_t>(a.lane(4, i)));
            const float fb = std::bit_cast<float>(
                static_cast<std::uint32_t>(b.lane(4, i)));
            result.setLane(4, i, std::bit_cast<std::uint32_t>(fn(fa, fb)));
        }
    };

    auto binary_f64 = [&](auto fn) {
        const Vec128 &b = state_.readVecReg(uop.src2);
        for (unsigned i = 0; i < 2; ++i) {
            const double fa = std::bit_cast<double>(a.lane(8, i));
            const double fb = std::bit_cast<double>(b.lane(8, i));
            result.setLane(8, i, std::bit_cast<std::uint64_t>(fn(fa, fb)));
        }
    };

    switch (uop.op) {
      case MicroOpcode::VAdd:
        binary_int([](std::uint64_t x, std::uint64_t y) { return x + y; });
        break;
      case MicroOpcode::VSub:
        binary_int([](std::uint64_t x, std::uint64_t y) { return x - y; });
        break;
      case MicroOpcode::VAnd:
        binary_int([](std::uint64_t x, std::uint64_t y) { return x & y; });
        break;
      case MicroOpcode::VOr:
        binary_int([](std::uint64_t x, std::uint64_t y) { return x | y; });
        break;
      case MicroOpcode::VXor:
        binary_int([](std::uint64_t x, std::uint64_t y) { return x ^ y; });
        break;
      case MicroOpcode::VMulLo16:
        binary_int([](std::uint64_t x, std::uint64_t y) {
            return (x * y) & 0xffff;
        });
        break;
      case MicroOpcode::VShlI:
        unary_shift(true);
        break;
      case MicroOpcode::VShrI:
        unary_shift(false);
        break;
      case MicroOpcode::FAddPs:
        binary_f32([](float x, float y) { return x + y; });
        break;
      case MicroOpcode::FMulPs:
        binary_f32([](float x, float y) { return x * y; });
        break;
      case MicroOpcode::FSubPs:
        binary_f32([](float x, float y) { return x - y; });
        break;
      case MicroOpcode::FDivPs:
        binary_f32([](float x, float y) { return x / y; });
        break;
      case MicroOpcode::FSqrtPs: {
        // Unary: operates on the source operand (src2 when present).
        const Vec128 &s =
            uop.src2.valid() ? state_.readVecReg(uop.src2) : a;
        for (unsigned i = 0; i < 4; ++i) {
            const float fa = std::bit_cast<float>(
                static_cast<std::uint32_t>(s.lane(4, i)));
            result.setLane(
                4, i, std::bit_cast<std::uint32_t>(std::sqrt(fa)));
        }
        break;
      }
      case MicroOpcode::FAddPd:
        binary_f64([](double x, double y) { return x + y; });
        break;
      case MicroOpcode::FMulPd:
        binary_f64([](double x, double y) { return x * y; });
        break;
      case MicroOpcode::FSubPd:
        binary_f64([](double x, double y) { return x - y; });
        break;
      default:
        csd_panic("execVector: unhandled micro-opcode ",
                  static_cast<int>(uop.op));
    }

    state_.writeVecReg(uop.dst, result);
}

inline void
FunctionalExecutor::execUop(const Uop &uop, DynUop &dyn, FlowResult &result,
                            Addr fall_through)
{
    switch (uop.op) {
      case MicroOpcode::Load: {
        dyn.effAddr = agen(uop);
        const std::uint64_t val = state_.mem.read(dyn.effAddr, uop.memSize);
        if (uop.dst.valid())
            state_.writeInt(uop.dst, val);
        break;
      }
      case MicroOpcode::Store: {
        dyn.effAddr = agen(uop);
        state_.mem.write(dyn.effAddr, uop.memSize,
                         state_.readInt(uop.src3));
        break;
      }
      case MicroOpcode::StoreImm: {
        dyn.effAddr = agen(uop);
        state_.mem.write(dyn.effAddr, uop.memSize,
                         static_cast<std::uint64_t>(uop.imm));
        break;
      }
      case MicroOpcode::LoadVec: {
        dyn.effAddr = agen(uop);
        state_.writeVecReg(uop.dst, state_.mem.readVec(dyn.effAddr));
        break;
      }
      case MicroOpcode::StoreVec: {
        dyn.effAddr = agen(uop);
        state_.mem.writeVec(dyn.effAddr, state_.readVecReg(uop.src3));
        break;
      }
      case MicroOpcode::Br: {
        dyn.taken = evalCond(uop.cond, state_.flags);
        if (dyn.taken) {
            result.nextPc = uop.target;
            result.tookBranch = true;
        }
        break;
      }
      case MicroOpcode::BrInd: {
        dyn.taken = true;
        result.nextPc = state_.readInt(uop.src1);
        result.tookBranch = true;
        break;
      }
      case MicroOpcode::CacheFlush:
        // Architecturally a no-op; the timing layers evict [agen].
        dyn.effAddr = agen(uop);
        break;
      case MicroOpcode::ReadCycles:
        state_.writeInt(uop.dst, state_.cycleHint);
        break;
      case MicroOpcode::Nop:
        break;
      case MicroOpcode::Halt:
        state_.halted = true;
        result.halted = true;
        break;
      case MicroOpcode::VAdd: case MicroOpcode::VSub:
      case MicroOpcode::VAnd: case MicroOpcode::VOr:
      case MicroOpcode::VXor: case MicroOpcode::VMulLo16:
      case MicroOpcode::VShlI: case MicroOpcode::VShrI:
      case MicroOpcode::VMov:
      case MicroOpcode::FAddPs: case MicroOpcode::FMulPs:
      case MicroOpcode::FSubPs: case MicroOpcode::FAddPd:
      case MicroOpcode::FMulPd: case MicroOpcode::FSubPd:
      case MicroOpcode::FDivPs: case MicroOpcode::FSqrtPs:
      case MicroOpcode::VInsert:
        execVector(uop);
        break;
      case MicroOpcode::VExtract: {
        const Vec128 &vec = state_.readVecReg(uop.src1);
        state_.writeInt(uop.dst,
                        vec.lane(8, static_cast<unsigned>(uop.imm) & 1));
        break;
      }
      case MicroOpcode::FAddS: case MicroOpcode::FSubS:
      case MicroOpcode::FMulS: case MicroOpcode::FDivS:
      case MicroOpcode::FSqrtS:
      case MicroOpcode::FAddSd: case MicroOpcode::FSubSd:
      case MicroOpcode::FMulSd:
        execScalarFp(uop);
        break;
      default:
        execScalarAlu(uop);
        break;
    }
    (void)fall_through;
}

} // namespace csd

#endif // CSD_CPU_EXECUTOR_HH

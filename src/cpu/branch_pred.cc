#include "cpu/branch_pred.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace csd
{

BranchPredictor::BranchPredictor(const BranchPredParams &params)
    : params_(params), stats_("bpred")
{
    if (!isPowerOf2(params_.gshareEntries) ||
        !isPowerOf2(params_.btbEntries)) {
        csd_fatal("BranchPredictor: table sizes must be powers of two");
    }
    counters_.assign(params_.gshareEntries, 2);  // weakly taken
    btb_.assign(params_.btbEntries, BtbEntry());
    stats_.addCounter("lookups", &lookups_, "dynamic branches predicted");
    stats_.addCounter("mispredicts", &mispredicts_,
                      "direction or target mispredictions");
    stats_.addCounter("btb_misses", &btbMisses_,
                      "taken branches with unknown target");
    stats_.addCounter("ras_used", &rasUsed_, "returns predicted via RAS");
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    const std::uint64_t hist_mask = (1ull << params_.historyBits) - 1;
    return static_cast<unsigned>(((pc >> 2) ^ (history_ & hist_mask)) &
                                 (params_.gshareEntries - 1));
}

unsigned
BranchPredictor::btbIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (params_.btbEntries - 1));
}

BranchPredictor::Prediction
BranchPredictor::predict(const MacroOp &op)
{
    ++lookups_;
    Prediction pred;

    if (isReturn(op.opcode)) {
        pred.taken = true;
        if (!ras_.empty()) {
            pred.target = ras_.back();
            ++rasUsed_;
        }
        return pred;
    }

    if (!isConditionalBranch(op.opcode)) {
        // Unconditional jmp/call/ind: always taken.
        pred.taken = true;
    } else {
        pred.taken = counters_[gshareIndex(op.pc)] >= 2;
    }

    if (pred.taken) {
        if (isDirectBranch(op.opcode)) {
            // Direct targets are available from decode.
            pred.target = op.target;
        } else {
            const BtbEntry &entry = btb_[btbIndex(op.pc)];
            pred.target = entry.pc == op.pc ? entry.target : invalidAddr;
            if (pred.target == invalidAddr)
                ++btbMisses_;
        }
    }
    return pred;
}

bool
BranchPredictor::update(const MacroOp &op, const Prediction &pred,
                        bool taken, Addr target)
{
    // Direction training.
    if (isConditionalBranch(op.opcode)) {
        std::uint8_t &counter = counters_[gshareIndex(op.pc)];
        if (taken && counter < 3)
            ++counter;
        else if (!taken && counter > 0)
            --counter;
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }

    // RAS maintenance.
    if (isCall(op.opcode)) {
        if (ras_.size() >= params_.rasEntries)
            ras_.erase(ras_.begin());
        ras_.push_back(op.nextPc());
    } else if (isReturn(op.opcode) && !ras_.empty()) {
        ras_.pop_back();
    }

    // BTB training for indirect targets.
    if (taken && !isDirectBranch(op.opcode) && !isReturn(op.opcode)) {
        BtbEntry &entry = btb_[btbIndex(op.pc)];
        entry.pc = op.pc;
        entry.target = target;
    }

    const bool correct =
        pred.taken == taken && (!taken || pred.target == target);
    if (!correct)
        ++mispredicts_;
    return correct;
}

} // namespace csd

/**
 * @file
 * Out-of-order back end timing model (Table I baseline).
 *
 * A dependence-driven model: micro-ops are processed in program order
 * and each computes its dispatch/issue/complete cycles from register
 * readiness, issue-port contention, ROB occupancy, and memory latency.
 * This captures the structures that matter for the paper's results —
 * micro-op bandwidth, port pressure from expanded flows, load latency
 * from the cache hierarchy — without event-driven machinery.
 */

#ifndef CSD_CPU_BACKEND_HH
#define CSD_CPU_BACKEND_HH

#include <array>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/executor.hh"
#include "memory/hierarchy.hh"
#include "uop/uop.hh"

namespace csd
{

/** Back end configuration (Sandy Bridge-like). */
struct BackEndParams
{
    unsigned robEntries = 168;
    unsigned commitWidth = 4;      //!< fused slots retired per cycle
    Cycles dispatchLatency = 3;    //!< rename/alloc depth after the IDQ
    Cycles mispredictResteer = 5;  //!< redirect delay past branch resolve
    Cycles takenBranchBubble = 1;  //!< correctly predicted taken branch
};

/** The out-of-order back end. */
class BackEnd
{
  public:
    /** @param mem hierarchy for data accesses; may be null. */
    BackEnd(const BackEndParams &params, MemHierarchy *mem);

    /** Timing of one processed uop. */
    struct UopTiming
    {
        Tick dispatch = 0;
        Tick issue = 0;
        Tick complete = 0;
        Tick commit = 0;

        // Stall decomposition: cycles each constraint demonstrably
        // added along this uop's dispatch->commit chain. Consumed by
        // the CPI-stack accountant (cpu/cpi_stack.hh).
        Cycles robStall = 0;     //!< dispatch held for a ROB entry
        Cycles depStall = 0;     //!< issue held past dispatch for sources
        Cycles portStall = 0;    //!< issue held for a free port
        Cycles memStall = 0;     //!< load latency beyond the L1D hit
        Cycles l1dLatency = 0;   //!< L1D-hit portion of a load's latency
        std::uint8_t memLevel = 0;  //!< level serving a load (1=L1D..4=DRAM)
        bool commitWidthStall = false;  //!< commit pushed by the width cap
    };

    /**
     * Process one dynamic uop delivered at @p deliver (fused followers
     * pass their leader's deliver cycle).
     */
    UopTiming process(const Uop &uop, const DynUop &dyn, Tick deliver);

    /** Cycle the most recently processed uop commits. */
    Tick lastCommit() const { return lastCommit_; }

    /** Total executed (unfused, non-eliminated) uops. */
    std::uint64_t uopsExecuted() const { return uopsExecuted_.value(); }

    StatGroup &stats() { return stats_; }

    /** Candidate issue ports for a functional-unit class. */
    struct PortSet
    {
        std::uint8_t count = 0;
        std::uint8_t ports[3] = {};
    };

    /** Issue-port binding table (exposed for the csd-verify audit). */
    static const PortSet &portsFor(FuClass fu);

  private:
    static constexpr unsigned numPorts = 6;

    BackEndParams params_;
    MemHierarchy *mem_;

    std::array<Tick, numFlatRegs> regReady_{};
    std::array<Tick, numPorts> portFree_{};

    // ROB occupancy: ring of commit cycles of the last robEntries uops.
    std::vector<Tick> robRing_;
    std::size_t robIdx_ = 0;
    std::uint64_t robCount_ = 0;

    Tick lastCommit_ = 0;
    Tick serializeAfter_ = 0;  //!< fence: younger uops issue after this
    Tick lastCommitCycle_ = 0;
    unsigned commitsThisCycle_ = 0;

    StatGroup stats_;
    Counter uopsExecuted_;
    Counter loadsExecuted_;
    Counter storesExecuted_;
    Counter vpuUops_;
    Counter portConflictCycles_;
};

} // namespace csd

#endif // CSD_CPU_BACKEND_HH

/**
 * @file
 * Architectural (plus decoder-temporary) state and the sparse memory
 * image of the simulated machine.
 */

#ifndef CSD_CPU_ARCH_STATE_HH
#define CSD_CPU_ARCH_STATE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "isa/registers.hh"
#include "uop/uop.hh"

namespace csd
{

/** A 128-bit vector register value. */
struct Vec128
{
    std::array<std::uint8_t, 16> bytes{};

    /** Read lane @p idx of width @p lane bytes (little-endian). */
    std::uint64_t
    lane(unsigned lane_width, unsigned idx) const
    {
        std::uint64_t val = 0;
        const unsigned base = lane_width * idx;
        for (unsigned i = 0; i < lane_width; ++i)
            val |= static_cast<std::uint64_t>(bytes[base + i]) << (8 * i);
        return val;
    }

    /** Write lane @p idx of width @p lane bytes. */
    void
    setLane(unsigned lane_width, unsigned idx, std::uint64_t val)
    {
        const unsigned base = lane_width * idx;
        for (unsigned i = 0; i < lane_width; ++i)
            bytes[base + i] = static_cast<std::uint8_t>(val >> (8 * i));
    }

    unsigned numLanes(unsigned lane_width) const { return 16 / lane_width; }

    bool
    operator==(const Vec128 &other) const
    {
        return bytes == other.bytes;
    }
};

/** Byte-addressable sparse memory backed by 4 KiB pages. */
class SparseMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr std::size_t pageSize = 1u << pageShift;

    /** Read @p size bytes (1..16) little-endian; unmapped bytes read 0. */
    std::uint64_t
    read(Addr addr, unsigned size) const
    {
        if (size > 8)
            csd_panic("SparseMemory::read: size > 8, use readVec");
        const std::size_t off = addr & (pageSize - 1);
        if (off + size <= pageSize) {  // one page lookup, not per byte
            const Page *page = findPage(addr);
            if (!page)
                return 0;
            const std::uint8_t *bytes = page->data() + off;
            // The memory image is little-endian by definition, so on a
            // little-endian host the bytes are the value.
            if constexpr (std::endian::native == std::endian::little) {
                std::uint64_t val = 0;
                std::memcpy(&val, bytes, size);
                return val;
            }
            std::uint64_t val = 0;
            for (unsigned i = 0; i < size; ++i)
                val |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
            return val;
        }
        std::uint64_t val = 0;
        for (unsigned i = 0; i < size; ++i)
            val |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
        return val;
    }

    /** Write the low @p size bytes of @p val little-endian. */
    void
    write(Addr addr, unsigned size, std::uint64_t val)
    {
        if (size > 8)
            csd_panic("SparseMemory::write: size > 8, use writeVec");
        const std::size_t off = addr & (pageSize - 1);
        if (off + size <= pageSize) {
            std::uint8_t *bytes = getPage(addr).data() + off;
            if constexpr (std::endian::native == std::endian::little) {
                std::memcpy(bytes, &val, size);
                return;
            }
            for (unsigned i = 0; i < size; ++i)
                bytes[i] = static_cast<std::uint8_t>(val >> (8 * i));
            return;
        }
        for (unsigned i = 0; i < size; ++i)
            writeByte(addr + i, static_cast<std::uint8_t>(val >> (8 * i)));
    }

    Vec128
    readVec(Addr addr) const
    {
        Vec128 vec;
        const std::size_t off = addr & (pageSize - 1);
        if (off + 16 <= pageSize) {
            const Page *page = findPage(addr);
            if (page) {
                const std::uint8_t *bytes = page->data() + off;
                for (unsigned i = 0; i < 16; ++i)
                    vec.bytes[i] = bytes[i];
            }
            return vec;
        }
        for (unsigned i = 0; i < 16; ++i)
            vec.bytes[i] = readByte(addr + i);
        return vec;
    }

    void
    writeVec(Addr addr, const Vec128 &vec)
    {
        const std::size_t off = addr & (pageSize - 1);
        if (off + 16 <= pageSize) {
            std::uint8_t *bytes = getPage(addr).data() + off;
            for (unsigned i = 0; i < 16; ++i)
                bytes[i] = vec.bytes[i];
            return;
        }
        for (unsigned i = 0; i < 16; ++i)
            writeByte(addr + i, vec.bytes[i]);
    }

    std::uint8_t
    readByte(Addr addr) const
    {
        const Page *page = findPage(addr);
        return page ? (*page)[addr & (pageSize - 1)] : 0;
    }

    void
    writeByte(Addr addr, std::uint8_t val)
    {
        Page &page = getPage(addr);
        page[addr & (pageSize - 1)] = val;
    }

    /** Copy a byte buffer into memory. */
    void
    writeBlob(Addr addr, const std::uint8_t *data, std::size_t len)
    {
        for (std::size_t i = 0; i < len; ++i)
            writeByte(addr + i, data[i]);
    }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    // Direct-mapped page cache: the hot loops alternate between a
    // handful of pages (stack, state block, lookup tables) millions of
    // times, so a single remembered page ping-pongs while a few slots
    // indexed by the low page-number bits catch all of them. Pages are
    // never freed and unique_ptr targets don't move on rehash, so the
    // raw pointers stay valid for the map's lifetime. Misses fall
    // through to the hash map; a nullptr cached page just means "not
    // cached", never "known absent".
    static constexpr std::size_t pageCacheSlots = 16;  // power of two

    static std::size_t
    pageCacheSlot(Addr page_no)
    {
        return static_cast<std::size_t>(page_no) & (pageCacheSlots - 1);
    }

    const Page *
    findPage(Addr addr) const
    {
        const Addr page_no = addr >> pageShift;
        const std::size_t slot = pageCacheSlot(page_no);
        if (cachedPageNo_[slot] == page_no)
            return cachedPage_[slot];
        auto it = pages_.find(page_no);
        if (it == pages_.end())
            return nullptr;
        cachedPageNo_[slot] = page_no;
        cachedPage_[slot] = it->second.get();
        return cachedPage_[slot];
    }

    Page &
    getPage(Addr addr)
    {
        const Addr page_no = addr >> pageShift;
        const std::size_t slot = pageCacheSlot(page_no);
        if (cachedPageNo_[slot] == page_no)
            return *cachedPage_[slot];
        auto &map_slot = pages_[page_no];
        if (!map_slot) {
            map_slot = std::make_unique<Page>();
            map_slot->fill(0);
        }
        cachedPageNo_[slot] = page_no;
        cachedPage_[slot] = map_slot.get();
        return *map_slot;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    // invalidAddr never equals a real page number (addresses are
    // shifted right by pageShift), so it marks an empty slot.
    mutable std::array<Addr, pageCacheSlots> cachedPageNo_ = [] {
        std::array<Addr, pageCacheSlots> init;
        init.fill(invalidAddr);
        return init;
    }();
    mutable std::array<Page *, pageCacheSlots> cachedPage_{};
};

/**
 * Full machine state visible to micro-ops: architectural registers,
 * decoder temporaries, flags, PC, and memory.
 */
class ArchState
{
  public:
    ArchState() { reset(); }

    void
    reset()
    {
        intRegs_.fill(0);
        for (Vec128 &v : vecRegs_)
            v = Vec128();
        flags = RFlags();
        pc = 0;
        halted = false;
        // Give the stack somewhere sane to live.
        intRegs_[static_cast<unsigned>(Gpr::Rsp)] = 0x7ffff000;
    }

    /** Load a program's data image and set the entry PC. */
    void
    loadProgram(const Program &prog)
    {
        for (const auto &[addr, bytes] : prog.data())
            mem.writeBlob(addr, bytes.data(), bytes.size());
        pc = prog.entry();
        halted = false;
    }

    std::uint64_t
    readInt(const RegId &reg) const
    {
        if (reg.cls != RegClass::Int || reg.idx >= numIntUopRegs)
            csd_panic("ArchState::readInt: bad reg");
        return intRegs_[reg.idx];
    }

    void
    writeInt(const RegId &reg, std::uint64_t val)
    {
        if (reg.cls != RegClass::Int || reg.idx >= numIntUopRegs)
            csd_panic("ArchState::writeInt: bad reg");
        intRegs_[reg.idx] = val;
    }

    const Vec128 &
    readVecReg(const RegId &reg) const
    {
        if (reg.cls != RegClass::Vec || reg.idx >= numVecUopRegs)
            csd_panic("ArchState::readVecReg: bad reg");
        return vecRegs_[reg.idx];
    }

    void
    writeVecReg(const RegId &reg, const Vec128 &val)
    {
        if (reg.cls != RegClass::Vec || reg.idx >= numVecUopRegs)
            csd_panic("ArchState::writeVecReg: bad reg");
        vecRegs_[reg.idx] = val;
    }

    std::uint64_t gpr(Gpr reg) const { return readInt(intReg(reg)); }
    void setGpr(Gpr reg, std::uint64_t val) { writeInt(intReg(reg), val); }

    const Vec128 &xmm(Xmm reg) const { return readVecReg(vecReg(reg)); }
    void setXmm(Xmm reg, const Vec128 &v) { writeVecReg(vecReg(reg), v); }

    RFlags flags;
    Addr pc = 0;
    bool halted = false;
    /** Cycle count visible to rdtsc (updated by the timing driver). */
    Tick cycleHint = 0;
    SparseMemory mem;

  private:
    std::array<std::uint64_t, numIntUopRegs> intRegs_;
    std::array<Vec128, numVecUopRegs> vecRegs_;
};

} // namespace csd

#endif // CSD_CPU_ARCH_STATE_HH

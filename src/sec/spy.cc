#include "sec/spy.hh"

#include <algorithm>

namespace csd
{

SpyWorkload
SpyWorkload::buildFlushReload(Addr target, unsigned probes,
                              unsigned delay_iters)
{
    SpyWorkload spy;
    spy.probes = probes;
    spy.target = blockAlign(target);

    // The spy lives in its own address region, far from any victim.
    ProgramBuilder b(0x10400000, 0x10600000);
    const Addr results = b.reserveData("spy_results", 4 * probes, 64);

    auto probe_loop = b.newLabel();
    auto delay_loop = b.newLabel();

    b.beginSymbol("spy_main");
    b.markEntry();
    b.movri(Gpr::R13, 0);  // probe index

    b.bind(probe_loop);
    // FLUSH the monitored line out of the shared hierarchy.
    b.clflush(memAbs(spy.target, MemSize::B8));

    // Wait out the probe interval (the victim runs in other quanta).
    if (delay_iters > 0) {
        b.movri(Gpr::R8, delay_iters);
        b.bind(delay_loop);
        b.subi(Gpr::R8, 1);
        b.jcc(Cond::Ne, delay_loop);
    }

    // RELOAD and time it.
    b.rdtsc();                       // rax = t0
    b.movrr(Gpr::R9, Gpr::Rax);
    b.load(Gpr::Rsi, memAbs(spy.target, MemSize::B8));
    b.rdtsc();                       // rax = t1
    b.sub(Gpr::Rax, Gpr::R9);
    b.store(memTable(results, Gpr::R13, 4, MemSize::B4), Gpr::Rax);

    b.addi(Gpr::R13, 1);
    b.cmpi(Gpr::R13, probes);
    b.jcc(Cond::Lt, probe_loop);
    b.halt();
    b.endSymbol("spy_main");

    spy.program = b.build();
    spy.resultsAddr = results;
    return spy;
}

std::vector<std::uint32_t>
SpyWorkload::latencies(const SparseMemory &mem) const
{
    std::vector<std::uint32_t> values(probes);
    for (unsigned i = 0; i < probes; ++i)
        values[i] =
            static_cast<std::uint32_t>(mem.read(resultsAddr + 4 * i, 4));
    return values;
}

std::uint32_t
SpyWorkload::calibrateThreshold(const SparseMemory &mem) const
{
    const auto values = latencies(mem);
    if (values.empty())
        return 0;
    const auto [lo_it, hi_it] =
        std::minmax_element(values.begin(), values.end());
    if (*hi_it == *lo_it)
        return *lo_it + 1;
    return *lo_it + (*hi_it - *lo_it) / 2;
}

std::vector<bool>
SpyWorkload::hits(const SparseMemory &mem, std::uint32_t threshold) const
{
    const auto values = latencies(mem);
    std::vector<bool> result(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        result[i] = values[i] <= threshold;
    return result;
}

} // namespace csd

#include "sec/channel_measure.hh"

#include "common/random.hh"
#include "sec/attacker.hh"
#include "sec/rsa_attack.hh"
#include "sec/victim.hh"
#include "workloads/aes.hh"
#include "workloads/rsa.hh"

namespace csd
{

namespace
{

/** Fold one variant's ledger into the measurement record. */
void
collectVariant(ChannelMeasurement &out, ObservationLedger &ledger,
               bool defended, const std::string &secret_site,
               Channel channel, bool set_granular, double inject_bits)
{
    std::vector<SiteMeasure> sites = ledger.siteMeasures();
    out.observations += ledger.totalObservations();

    MeasuredChannel mc;
    mc.site = secret_site;
    mc.channel = channel;
    mc.defended = defended;
    mc.setGranular = set_granular;
    const LedgerTally tally = ledger.tally(secret_site);
    mc.bitsPerObservation = tally.mutualInformationBits() + inject_bits;
    mc.observations = tally.total();
    out.crossCheck.push_back(std::move(mc));

    auto &dest = defended ? out.defendedSites : out.undefendedSites;
    dest = std::move(sites);
}

} // namespace

ChannelMeasurement
measureRsaChannels(const ChannelMeasureOptions &options)
{
    // A short exponent keeps the measurement in lint-CI budget; the
    // cross-checked quantity is per-observation, so width only affects
    // estimator noise. Bit pattern mixes 0s and 1s so the undefended
    // truth actually varies.
    const RsaWorkload workload = RsaWorkload::build(
        {0x12345678u, 0x9abcdef0u}, {0xfffffff1u, 0xdeadbeefu},
        0xa5c3, /*exp_bits=*/16);

    ChannelMeasurement out;
    out.target = "rsa";

    for (const bool defended : {false, true}) {
        DefenseConfig defense;
        if (defended) {
            defense.enabled = true;
            defense.decoyIRange = workload.multiplyRange;
            defense.taintSources = {workload.exponentRange,
                                    workload.resultRange};
        }
        Victim victim(workload.program, defense);
        CacheSetMonitor &monitor = victim.armChannelMonitor();
        ObservationLedger ledger(monitor);

        RsaAttackConfig config;
        config.flushReload = true;
        config.sliceInstructions = options.rsaSliceInstructions;
        config.ledger = &ledger;
        runRsaAttack(victim, workload, config);

        collectVariant(out, ledger, defended, "multiply",
                       Channel::L1IFetch, /*set_granular=*/false,
                       options.injectBits);
    }
    return out;
}

ChannelMeasurement
measureAesChannels(const ChannelMeasureOptions &options)
{
    const AesWorkload workload = AesWorkload::build(
        {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7,
         0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});

    // One Te0 line, chosen like the attack default to avoid aliasing
    // the rk/pt/ct sets.
    constexpr unsigned monitoredLine = 8;
    const Addr monitored =
        workload.tTableRange.start + monitoredLine * cacheBlockSize;

    ChannelMeasurement out;
    out.target = "aes";

    for (const bool defended : {false, true}) {
        DefenseConfig defense;
        if (defended) {
            defense.enabled = true;
            defense.decoyDRange = workload.tTableRange;
            defense.taintSources = {workload.keyRange};
        }
        Victim victim(workload.program, defense);
        CacheSetMonitor &monitor = victim.armChannelMonitor();
        ObservationLedger ledger(monitor);
        const unsigned monitored_set =
            victim.mem().l1d().setIndex(monitored);

        PrimeProbeAttacker pp(victim.mem(), {monitored}, false);
        Random rng(options.seed);
        constexpr auto l1d = CacheSetMonitor::Structure::L1D;

        // Random plaintexts: each encryption's 36 round-1..9 Te0
        // lookups miss the monitored line with probability ~(15/16)^36
        // ~ 10%, so the truth varies and the undefended MI is a real
        // (nonzero) measurement.
        for (unsigned sample = 0; sample < options.aesSamples; ++sample) {
            AesReference::Block pt{};
            for (auto &b : pt)
                b = static_cast<std::uint8_t>(rng.next32());
            workload.setInput(victim.sim().state().mem, pt);

            pp.prime();
            ledger.armSet("t0", l1d, monitored_set);
            victim.invoke();
            const ProbeResult probe = pp.probe()[0];
            // A probe miss means the victim displaced an attacker way.
            ledger.observeSet("t0", l1d, monitored_set, probe.latency,
                              !probe.hit);
        }

        collectVariant(out, ledger, defended, "t0", Channel::L1DAccess,
                       /*set_granular=*/true, options.injectBits);
    }
    return out;
}

} // namespace csd

/**
 * @file
 * Cache side-channel attacker primitives (paper §IV, §VI-B).
 *
 * The attacker co-resides with the victim and shares the cache
 * hierarchy. It can flush or evict any line and make precise timing
 * measurements (the paper grants it precise counters), but never sees
 * cache contents. Both classic probes are provided:
 *
 *  - FLUSH+RELOAD: clflush shared lines, later reload and time them —
 *    a fast reload means the victim brought the line back.
 *  - PRIME+PROBE: fill a cache set with attacker lines, later re-access
 *    them and time — a slow probe means the victim evicted one.
 */

#ifndef CSD_SEC_ATTACKER_HH
#define CSD_SEC_ATTACKER_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "memory/hierarchy.hh"

namespace csd
{

/** One timed probe observation. */
struct ProbeResult
{
    Addr addr = 0;
    Cycles latency = 0;
    bool hit = false;  //!< classified against the attacker's threshold
};

/** FLUSH+RELOAD attacker over a set of shared lines. */
class FlushReloadAttacker
{
  public:
    /**
     * @param mem        the shared hierarchy
     * @param targets    line addresses to monitor (shared pages)
     * @param instr_side probe through the I-cache path (code lines)
     */
    FlushReloadAttacker(MemHierarchy &mem, std::vector<Addr> targets,
                        bool instr_side);

    /** clflush every monitored line from the whole hierarchy. */
    void flush();

    /** Reload each line, classifying hit/miss by access time. */
    std::vector<ProbeResult> reload();

    /** Reload latencies at or below this count as hits. */
    Cycles hitThreshold() const { return threshold_; }

    const std::vector<Addr> &targets() const { return targets_; }

  private:
    MemHierarchy &mem_;
    std::vector<Addr> targets_;
    bool instrSide_;
    Cycles threshold_;
};

/** PRIME+PROBE attacker over the sets of chosen victim lines. */
class PrimeProbeAttacker
{
  public:
    /**
     * @param mem          the shared hierarchy
     * @param victim_lines victim line addresses whose L1 sets to watch
     * @param instr_side   attack the L1I instead of the L1D
     * @param attacker_base start of the attacker's own address region
     */
    PrimeProbeAttacker(MemHierarchy &mem, std::vector<Addr> victim_lines,
                       bool instr_side, Addr attacker_base = 0x20000000);

    /** Fill every watched set with attacker lines. */
    void prime();

    /**
     * Re-access the eviction sets; one result per watched victim line.
     * `hit == false` means at least one attacker way missed, i.e. the
     * victim touched the set since prime().
     */
    std::vector<ProbeResult> probe();

    /** Eviction-set addresses for watched line @p idx (for tests). */
    const std::vector<Addr> &evictionSet(std::size_t idx) const
    {
        return evictionSets_[idx];
    }

  private:
    MemAccessResult access(Addr addr);

    MemHierarchy &mem_;
    std::vector<Addr> victimLines_;
    bool instrSide_;
    std::vector<std::vector<Addr>> evictionSets_;
    Cycles l1HitLatency_;
};

} // namespace csd

#endif // CSD_SEC_ATTACKER_HH

/**
 * @file
 * Chosen-plaintext cache attack on T-table AES (paper §VII-A, Fig. 7a).
 *
 * The classic first-round attack: the round-1 lookup into table
 * T_(b mod 4) for plaintext byte b uses index pt[b] ^ key[b], so the
 * attacker monitors one line of that table and sweeps the high nibble
 * of pt[b] over all 16 values. The monitored line is touched on *every*
 * encryption only for the guess matching the key's high nibble (other
 * guesses touch it with high but sub-100% probability via the other 39
 * accesses to the table). 16 bytes x 4 bits = 64 key bits, the paper's
 * headline number.
 */

#ifndef CSD_SEC_AES_ATTACK_HH
#define CSD_SEC_AES_ATTACK_HH

#include <array>

#include "sec/observation_ledger.hh"
#include "sec/victim.hh"
#include "workloads/aes.hh"

namespace csd
{

/** Attack configuration. */
struct AesAttackConfig
{
    /**
     * Sampling is adaptive: a guess is eliminated as soon as one
     * encryption fails to touch the monitored line (wrong guesses miss
     * with probability ~(15/16)^39 ~ 8% per sample); the survivors run
     * to this cap. The correct guess can never miss.
     */
    unsigned maxSamplesPerCandidate = 150;

    /** Monitored T-table line (avoid lines aliasing rk/pt/ct sets). */
    unsigned monitoredLine = 8;

    /** true: FLUSH+RELOAD, false: PRIME+PROBE. */
    bool flushReload = false;

    std::uint64_t seed = 1;

    /**
     * Optional observation ledger: every probe is recorded under site
     * "t0".."t3" (the monitored T-table) and classified against the
     * victim's ground-truth accesses. Requires
     * Victim::armChannelMonitor() first.
     */
    ObservationLedger *ledger = nullptr;
};

/** Attack outcome. */
struct AesAttackResult
{
    /** Recovered high nibble per key byte; -1 if undetermined. */
    std::array<int, 16> recoveredHighNibble{};

    /** Observed per-guess monitored-line touch rates, per byte. */
    std::array<std::array<double, 16>, 16> touchRate{};

    unsigned nibblesCorrect = 0;  //!< vs ground truth
    unsigned keyBitsRecovered = 0;
    std::uint64_t encryptions = 0;
};

/**
 * Run the attack against @p victim executing @p workload.
 * @param key ground truth, used only for scoring.
 */
AesAttackResult runAesAttack(Victim &victim, const AesWorkload &workload,
                             const std::array<std::uint8_t, 16> &key,
                             const AesAttackConfig &config = {});

} // namespace csd

#endif // CSD_SEC_AES_ATTACK_HH

#include "sec/observation_ledger.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace csd
{

namespace
{

/** Bump when the ledger JSON layout changes. */
constexpr int ledgerSchemaVersion = 1;

} // namespace

double
LedgerTally::mutualInformationBits() const
{
    const double n = static_cast<double>(total());
    if (n == 0)
        return 0.0;
    const double p_t1 = static_cast<double>(tp + fn) / n;
    const double p_t0 = static_cast<double>(tn + fp) / n;
    const double p_o1 = static_cast<double>(tp + fp) / n;
    const double p_o0 = static_cast<double>(tn + fn) / n;
    double mi = 0.0;
    const auto cell = [&](std::uint64_t count, double p_t, double p_o) {
        if (count == 0)
            return;  // 0 * log(0) -> 0 in the plug-in estimator
        const double joint = static_cast<double>(count) / n;
        mi += joint * std::log2(joint / (p_t * p_o));
    };
    cell(tp, p_t1, p_o1);
    cell(fp, p_t0, p_o1);
    cell(fn, p_t1, p_o0);
    cell(tn, p_t0, p_o0);
    // Clamp tiny negative rounding residue from the log sums.
    return mi < 0.0 ? 0.0 : mi;
}

ObservationLedger::ObservationLedger(CacheSetMonitor &monitor,
                                     std::size_t observation_cap)
    : monitor_(monitor), observationCap_(observation_cap)
{
}

ObservationLedger::SiteState &
ObservationLedger::site(const std::string &name, Structure structure)
{
    auto [it, inserted] = sites_.try_emplace(name);
    if (inserted)
        it->second.structure = structure;
    else if (it->second.structure != structure)
        csd_panic("ObservationLedger: site \"", name, "\" re-armed on ",
                  CacheSetMonitor::structureName(structure), " (was ",
                  CacheSetMonitor::structureName(it->second.structure), ")");
    return it->second;
}

void
ObservationLedger::armLine(const std::string &site_name,
                           Structure structure, Addr line)
{
    monitor_.watchLine(structure, line);
    SiteState &st = site(site_name, structure);
    st.watermarks[blockAlign(line)] =
        monitor_.victimLineTouches(structure, line);
}

void
ObservationLedger::observeLine(const std::string &site_name,
                               Structure structure, Addr line, unsigned set,
                               Cycles latency, bool predicted)
{
    SiteState &st = site(site_name, structure);
    const std::uint64_t now = monitor_.victimLineTouches(structure, line);
    auto mark = st.watermarks.find(blockAlign(line));
    if (mark == st.watermarks.end())
        csd_panic("ObservationLedger: observeLine without armLine for "
                  "site \"", site_name, "\"");
    const bool truth = now > mark->second;
    mark->second = now;
    classify(st, set, latency, predicted, truth);
}

void
ObservationLedger::armSet(const std::string &site_name, Structure structure,
                          unsigned set)
{
    SiteState &st = site(site_name, structure);
    st.watermarks[set] = monitor_.victimSetTouches(structure, set);
}

void
ObservationLedger::observeSet(const std::string &site_name,
                              Structure structure, unsigned set,
                              Cycles latency, bool predicted)
{
    SiteState &st = site(site_name, structure);
    const std::uint64_t now = monitor_.victimSetTouches(structure, set);
    auto mark = st.watermarks.find(set);
    if (mark == st.watermarks.end())
        csd_panic("ObservationLedger: observeSet without armSet for "
                  "site \"", site_name, "\"");
    const bool truth = now > mark->second;
    mark->second = now;
    classify(st, set, latency, predicted, truth);
}

void
ObservationLedger::classify(SiteState &st, unsigned set, Cycles latency,
                            bool predicted, bool truth)
{
    if (truth)
        ++(predicted ? st.tally.tp : st.tally.fn);
    else
        ++(predicted ? st.tally.fp : st.tally.tn);
    ++totalObservations_;
    if (st.observations.size() < observationCap_)
        st.observations.push_back({set, latency, predicted, truth});
    else
        ++st.dropped;
}

std::vector<SiteMeasure>
ObservationLedger::siteMeasures() const
{
    std::vector<SiteMeasure> measures;
    measures.reserve(sites_.size());
    for (const auto &[name, st] : sites_) {
        SiteMeasure m;
        m.site = name;
        m.structure = st.structure;
        m.tally = st.tally;
        m.miBits = st.tally.mutualInformationBits();
        measures.push_back(std::move(m));
    }
    return measures;  // std::map iteration is already name-sorted
}

LedgerTally
ObservationLedger::tally(const std::string &site_name) const
{
    auto it = sites_.find(site_name);
    return it == sites_.end() ? LedgerTally{} : it->second.tally;
}

const std::vector<LedgerObservation> &
ObservationLedger::observations(const std::string &site_name) const
{
    static const std::vector<LedgerObservation> empty;
    auto it = sites_.find(site_name);
    return it == sites_.end() ? empty : it->second.observations;
}

void
ObservationLedger::writeJson(std::ostream &os) const
{
    os << "{\n \"schema_version\": " << ledgerSchemaVersion << ",\n";
    os << " \"total_observations\": " << totalObservations_ << ",\n";
    os << " \"sites\": {";
    bool first = true;
    for (const auto &[name, st] : sites_) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "  \"" << jsonEscape(name) << "\": {";
        os << "\"structure\": \""
           << CacheSetMonitor::structureName(st.structure) << "\", ";
        os << "\"tp\": " << st.tally.tp << ", \"fp\": " << st.tally.fp
           << ", \"tn\": " << st.tally.tn << ", \"fn\": " << st.tally.fn
           << ", ";
        os << "\"observations\": " << st.tally.total() << ", ";
        os << "\"dropped\": " << st.dropped << ", ";
        os << "\"bits_per_observation\": "
           << st.tally.mutualInformationBits() << "}";
    }
    os << (first ? "" : "\n ") << "}\n}\n";
}

} // namespace csd

/**
 * @file
 * Attacker-observation ledger: the dynamic half of the leakage story.
 *
 * The static prover (verify/leak_prover.hh) bounds what a leak site
 * *could* reveal; the ledger records what an attacker *actually*
 * observed. Every probe (FLUSH+RELOAD reload or PRIME+PROBE probe) is
 * logged with its latency and threshold verdict, then classified
 * against ground truth from the CacheSetMonitor's victim-attributed
 * counters:
 *
 *  - true positive:  attacker inferred victim activity, victim was active
 *  - false positive: attacker inferred activity, victim was idle
 *    (e.g. a decoy touch or an LLC-resident "fast" reload)
 *  - true negative / false negative: the complements
 *
 * The leakage meter is the empirical mutual information between the
 *  (victim active?) truth and the (attacker says active?) observation
 * over the ledger — bits per observation, directly comparable to the
 * static bound, published in the Fig. 7 sidecars and cross-checked by
 * `csd-lint --channels` (verify/channel_crosscheck.hh).
 *
 * Protocol per probe round: arm*() after prime/flush snapshots the
 * victim-counter watermark; observe*() after the probe reads the delta
 * as ground truth and consumes the watermark.
 */

#ifndef CSD_SEC_OBSERVATION_LEDGER_HH
#define CSD_SEC_OBSERVATION_LEDGER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "memory/set_monitor.hh"

namespace csd
{

/** The 2x2 truth-vs-observation contingency table of one leak site. */
struct LedgerTally
{
    std::uint64_t tp = 0;
    std::uint64_t fp = 0;
    std::uint64_t tn = 0;
    std::uint64_t fn = 0;

    std::uint64_t total() const { return tp + fp + tn + fn; }

    /**
     * Plug-in mutual-information estimate I(truth; observation) in
     * bits per observation. 0 for an empty table or whenever either
     * marginal is constant (a channel the attacker learns nothing
     * from — e.g. decoys making every probe read "active").
     */
    double mutualInformationBits() const;
};

/** One recorded probe. */
struct LedgerObservation
{
    unsigned set = 0;          //!< monitored set index
    Cycles latency = 0;        //!< measured probe latency
    bool predicted = false;    //!< attacker's verdict: victim active?
    bool truth = false;        //!< monitor ground truth
};

/** Per-site classification + leakage summary. */
struct SiteMeasure
{
    std::string site;
    CacheSetMonitor::Structure structure = CacheSetMonitor::Structure::L1D;
    LedgerTally tally;
    double miBits = 0.0;  //!< empirical bits/observation
};

/** Records and classifies every attacker probe against ground truth. */
class ObservationLedger
{
  public:
    using Structure = CacheSetMonitor::Structure;

    /**
     * @param monitor ground-truth source; must stay alive and armed on
     *        the structures the attack probes.
     * @param observation_cap per-site cap on retained raw observations
     *        (tallies keep counting past it).
     */
    explicit ObservationLedger(CacheSetMonitor &monitor,
                               std::size_t observation_cap = 1u << 16);

    // --- FLUSH+RELOAD (line-granular truth) -------------------------------

    /** Snapshot the victim-touch watermark of @p line (post-flush). */
    void armLine(const std::string &site, Structure structure, Addr line);

    /** Classify a reload: @p predicted = attacker's "victim touched it"
     *  verdict (reload hit). Truth = watched-line delta since arm. */
    void observeLine(const std::string &site, Structure structure,
                     Addr line, unsigned set, Cycles latency,
                     bool predicted);

    // --- PRIME+PROBE (set-granular truth) ---------------------------------

    /** Snapshot the victim-access watermark of @p set (post-prime). */
    void armSet(const std::string &site, Structure structure, unsigned set);

    /** Classify a probe: @p predicted = attacker's "victim touched the
     *  set" verdict (some way evicted). */
    void observeSet(const std::string &site, Structure structure,
                    unsigned set, Cycles latency, bool predicted);

    // --- results -----------------------------------------------------------

    /** All sites with their tallies and leakage, sorted by site name. */
    std::vector<SiteMeasure> siteMeasures() const;

    /** One site's tally (empty tally if the site never observed). */
    LedgerTally tally(const std::string &site) const;

    /** Retained raw observations for @p site (capped). */
    const std::vector<LedgerObservation> &
    observations(const std::string &site) const;

    /** Total probes recorded across all sites. */
    std::uint64_t totalObservations() const { return totalObservations_; }

    /** {"schema_version":…, "sites": {site: {tp,fp,tn,fn,…}}} */
    void writeJson(std::ostream &os) const;

    CacheSetMonitor &monitor() { return monitor_; }

  private:
    struct SiteState
    {
        Structure structure = Structure::L1D;
        LedgerTally tally;
        std::vector<LedgerObservation> observations;
        std::uint64_t dropped = 0;  //!< observations past the cap
        /** Victim-counter watermarks, keyed by line addr or set. */
        std::map<std::uint64_t, std::uint64_t> watermarks;
    };

    SiteState &site(const std::string &name, Structure structure);
    void classify(SiteState &st, unsigned set, Cycles latency,
                  bool predicted, bool truth);

    CacheSetMonitor &monitor_;
    std::size_t observationCap_;
    std::map<std::string, SiteState> sites_;
    std::uint64_t totalObservations_ = 0;
};

} // namespace csd

#endif // CSD_SEC_OBSERVATION_LEDGER_HH

/**
 * @file
 * FLUSH+RELOAD / PRIME+PROBE attack on square-and-multiply RSA
 * (paper §VII-A, Fig. 7b).
 *
 * The attacker monitors the first I-cache lines of the victim's
 * `square` and `multiply` functions at a fixed probe interval while
 * one modular exponentiation runs. Each square episode corresponds to
 * one exponent bit; a multiply episode before the next square means
 * that bit was 1. Per-slice hot/cold traces (the raw Fig. 7b series)
 * are returned alongside the parsed exponent.
 */

#ifndef CSD_SEC_RSA_ATTACK_HH
#define CSD_SEC_RSA_ATTACK_HH

#include <vector>

#include "sec/observation_ledger.hh"
#include "sec/victim.hh"
#include "workloads/rsa.hh"

namespace csd
{

/** Attack configuration. */
struct RsaAttackConfig
{
    /** Victim instructions executed per probe interval. */
    std::uint64_t sliceInstructions = 400;

    /** true: FLUSH+RELOAD, false: PRIME+PROBE on the L1I. */
    bool flushReload = true;

    /** Safety bound on the number of slices. */
    std::uint64_t maxSlices = 2000000;

    /**
     * Optional observation ledger: every per-slice probe is recorded
     * under sites "square" / "multiply" and classified against the
     * victim's ground-truth fetches. Requires
     * Victim::armChannelMonitor() first.
     */
    ObservationLedger *ledger = nullptr;
};

/** Attack outcome. */
struct RsaAttackResult
{
    /** Per-slice (square hot, multiply hot) observations. */
    std::vector<std::pair<bool, bool>> timeline;

    /** Parsed exponent bits, most significant first. */
    std::vector<bool> recoveredBits;

    unsigned bitsCorrect = 0;   //!< positional matches vs ground truth
    unsigned totalBits = 0;     //!< ground-truth exponent width
    double accuracy = 0.0;
};

/** Run one full-exponentiation attack. */
RsaAttackResult runRsaAttack(Victim &victim, const RsaWorkload &workload,
                             const RsaAttackConfig &config = {});

} // namespace csd

#endif // CSD_SEC_RSA_ATTACK_HH

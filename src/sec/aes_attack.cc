#include "sec/aes_attack.hh"

#include "common/random.hh"
#include "sec/attacker.hh"

namespace csd
{

AesAttackResult
runAesAttack(Victim &victim, const AesWorkload &workload,
             const std::array<std::uint8_t, 16> &key,
             const AesAttackConfig &config)
{
    AesAttackResult result;
    result.recoveredHighNibble.fill(-1);
    Random rng(config.seed);

    for (unsigned byte = 0; byte < 16; ++byte) {
        const unsigned table = byte % 4;
        const Addr monitored = workload.tTableRange.start +
                               table * 1024 +
                               config.monitoredLine * cacheBlockSize;
        const std::string site = "t" + std::to_string(table);
        const unsigned monitored_set =
            victim.mem().l1d().setIndex(monitored);

        FlushReloadAttacker fr(victim.mem(), {monitored}, false);
        PrimeProbeAttacker pp(victim.mem(), {monitored}, false);

        for (unsigned guess = 0; guess < 16; ++guess) {
            unsigned touched = 0;
            unsigned samples = 0;
            for (unsigned sample = 0;
                 sample < config.maxSamplesPerCandidate; ++sample) {
                AesReference::Block pt{};
                for (auto &b : pt)
                    b = static_cast<std::uint8_t>(rng.next32());
                pt[byte] = static_cast<std::uint8_t>(
                    (guess << 4) | (rng.next32() & 0xf));
                workload.setInput(victim.sim().state().mem, pt);

                if (config.flushReload)
                    fr.flush();
                else
                    pp.prime();
                if (config.ledger) {
                    if (config.flushReload)
                        config.ledger->armLine(
                            site, CacheSetMonitor::Structure::L1D,
                            monitored);
                    else
                        config.ledger->armSet(
                            site, CacheSetMonitor::Structure::L1D,
                            monitored_set);
                }

                victim.invoke();
                ++result.encryptions;
                ++samples;

                bool saw_victim;
                if (config.flushReload) {
                    const ProbeResult probe = fr.reload()[0];
                    saw_victim = probe.hit;
                    if (config.ledger)
                        config.ledger->observeLine(
                            site, CacheSetMonitor::Structure::L1D,
                            monitored, monitored_set, probe.latency,
                            saw_victim);
                } else {
                    // A probe miss means the victim displaced us.
                    const ProbeResult probe = pp.probe()[0];
                    saw_victim = !probe.hit;
                    if (config.ledger)
                        config.ledger->observeSet(
                            site, CacheSetMonitor::Structure::L1D,
                            monitored_set, probe.latency, saw_victim);
                }
                if (saw_victim)
                    ++touched;
                else
                    break;  // eliminated: cannot be the key nibble
            }
            result.touchRate[byte][guess] =
                static_cast<double>(touched) / samples;
        }

        // The correct guess is the unique one touched on every sample.
        int best = -1;
        unsigned full_rate_count = 0;
        for (unsigned guess = 0; guess < 16; ++guess) {
            if (result.touchRate[byte][guess] >= 1.0) {
                ++full_rate_count;
                best = static_cast<int>(guess);
            }
        }
        if (full_rate_count == 1) {
            // index = pt ^ key touches `monitoredLine` iff
            // guess == high(key) ^ monitoredLine.
            result.recoveredHighNibble[byte] =
                best ^ static_cast<int>(config.monitoredLine);
        }
    }

    for (unsigned byte = 0; byte < 16; ++byte) {
        if (result.recoveredHighNibble[byte] >= 0 &&
            result.recoveredHighNibble[byte] == (key[byte] >> 4)) {
            ++result.nibblesCorrect;
        }
    }
    result.keyBitsRecovered = 4 * result.nibblesCorrect;
    return result;
}

} // namespace csd

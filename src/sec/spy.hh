/**
 * @file
 * A FLUSH+RELOAD spy written in the simulated ISA itself.
 *
 * The attack harnesses in aes_attack/rsa_attack manipulate the cache
 * model directly; this generator instead builds a *program* that runs
 * as a co-located hardware context (see sim/duo.hh), flushing a shared
 * line with `clflush`, timing its reload with `rdtsc`, and logging the
 * measured latencies to memory — the paper's actual attacker
 * deployment model (§IV-A). `rdtsc` is modeled with rdtscp/lfence
 * serialization, as real timing spies enforce.
 */

#ifndef CSD_SEC_SPY_HH
#define CSD_SEC_SPY_HH

#include <vector>

#include "cpu/arch_state.hh"
#include "isa/program.hh"

namespace csd
{

/** A generated spy program and its result buffer. */
struct SpyWorkload
{
    Program program;
    Addr resultsAddr = 0;
    unsigned probes = 0;
    Addr target = 0;

    /**
     * Build a FLUSH+RELOAD spy.
     *
     * @param target      shared line to monitor
     * @param probes      number of flush/wait/reload rounds
     * @param delay_iters busy-wait iterations per probe interval
     */
    static SpyWorkload buildFlushReload(Addr target, unsigned probes,
                                        unsigned delay_iters = 64);

    /** Measured reload latencies, one per probe. */
    std::vector<std::uint32_t> latencies(const SparseMemory &mem) const;

    /**
     * Classify the latencies into hits (reload beat the threshold).
     * The spy picks its threshold the way real ones do: between the
     * observed fast and slow clusters.
     */
    std::vector<bool> hits(const SparseMemory &mem,
                           std::uint32_t threshold) const;

    /** A threshold between the two latency clusters (midpoint of the
     *  observed min and max); falls back to min+1 if unimodal. */
    std::uint32_t calibrateThreshold(const SparseMemory &mem) const;
};

} // namespace csd

#endif // CSD_SEC_SPY_HH

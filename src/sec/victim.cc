#include "sec/victim.hh"

namespace csd
{

Victim::Victim(const Program &prog, const DefenseConfig &defense,
               SimMode mode)
    : defense_(defense)
{
    params_.mode = mode;
    if (defense_.enabled)
        params_.mem.extraL2Latency = defense_.diftL2Penalty;
    sim_ = std::make_unique<Simulation>(prog, params_);

    if (defense_.enabled) {
        msrs_ = std::make_unique<MsrFile>();
        taint_ = std::make_unique<TaintTracker>();
        csd_ = std::make_unique<ContextSensitiveDecoder>(*msrs_,
                                                         taint_.get());
        for (const AddrRange &source : defense_.taintSources)
            if (source.valid())
                taint_->addTaintSource(source);
        msrs_->setWatchdogPeriod(defense_.watchdogPeriod);
        if (defense_.decoyDRange.valid())
            msrs_->setDecoyDRange(0, defense_.decoyDRange);
        if (defense_.decoyIRange.valid())
            msrs_->setDecoyIRange(0, defense_.decoyIRange);
        msrs_->setControl(ctrlStealthEnable | ctrlDiftTrigger);

        sim_->setTaintTracker(taint_.get());
        sim_->setCsd(csd_.get());
    }
}

CacheSetMonitor &
Victim::armChannelMonitor(const SetMonitorConfig &config)
{
    CacheSetMonitor &monitor = sim_->mem().armSetMonitor(config);
    sim_->frontend().uopCache().setMonitor(&monitor);
    return monitor;
}

void
Victim::invoke()
{
    CacheSetMonitor::ScopedActor actor(sim_->mem().setMonitor(),
                                       MonitorActor::Victim);
    sim_->restart();
    sim_->runToHalt();
}

bool
Victim::invokeSlice(std::uint64_t n)
{
    CacheSetMonitor::ScopedActor actor(sim_->mem().setMonitor(),
                                       MonitorActor::Victim);
    if (sim_->halted())
        sim_->restart();
    sim_->run(n);
    return !sim_->halted();
}

} // namespace csd

/**
 * @file
 * Victim environment bundle: a Simulation wired with (optionally) the
 * full stealth-mode defense stack — MSR file, context-sensitive
 * decoder, DIFT taint tracker, decoy address ranges, and watchdog.
 */

#ifndef CSD_SEC_VICTIM_HH
#define CSD_SEC_VICTIM_HH

#include <memory>

#include "csd/csd.hh"
#include "sim/simulation.hh"

namespace csd
{

/** Defense configuration for a victim run. */
struct DefenseConfig
{
    bool enabled = false;
    AddrRange decoyDRange;      //!< sensitive data (e.g. T-tables)
    AddrRange decoyIRange;      //!< sensitive code (e.g. multiply)
    /** Key material / secret intermediates (DIFT sources). */
    std::vector<AddrRange> taintSources;
    Cycles watchdogPeriod = 1000;
    Cycles diftL2Penalty = 4;   //!< hardware DIFT tag-access cost
};

/** A victim simulation, optionally defended by stealth mode. */
class Victim
{
  public:
    Victim(const Program &prog, const DefenseConfig &defense,
           SimMode mode = SimMode::CacheOnly);

    Simulation &sim() { return *sim_; }
    MemHierarchy &mem() { return sim_->mem(); }

    /**
     * Arm per-set channel telemetry (memory/set_monitor.hh) on the
     * victim's L1I/L1D/uop cache. Idempotent. Once armed, invoke() and
     * invokeSlice() run under MonitorActor::Victim so the monitor's
     * victim counters are exactly this program's accesses — the ground
     * truth an ObservationLedger classifies attacker probes against.
     */
    CacheSetMonitor &armChannelMonitor(const SetMonitorConfig &config = {});

    /** The armed monitor, or null. */
    CacheSetMonitor *channelMonitor() { return sim_->mem().setMonitor(); }

    /** Run one complete invocation of the victim program. */
    void invoke();

    /** Run at most @p n instructions of the current invocation;
     *  restarts the program first if it had halted. Returns true while
     *  the invocation is still in progress. */
    bool invokeSlice(std::uint64_t n);

    bool defended() const { return defense_.enabled; }
    ContextSensitiveDecoder *csd() { return csd_.get(); }

  private:
    DefenseConfig defense_;
    SimParams params_;
    std::unique_ptr<MsrFile> msrs_;
    std::unique_ptr<TaintTracker> taint_;
    std::unique_ptr<ContextSensitiveDecoder> csd_;
    std::unique_ptr<Simulation> sim_;
};

} // namespace csd

#endif // CSD_SEC_VICTIM_HH

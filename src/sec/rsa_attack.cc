#include "sec/rsa_attack.hh"

#include <cstdint>

#include "sec/attacker.hh"

namespace csd
{

RsaAttackResult
runRsaAttack(Victim &victim, const RsaWorkload &workload,
             const RsaAttackConfig &config)
{
    RsaAttackResult result;
    const Addr square_line = blockAlign(workload.squareRange.start);
    const Addr multiply_line = blockAlign(workload.multiplyRange.start);
    const unsigned square_set = victim.mem().l1i().setIndex(square_line);
    const unsigned multiply_set =
        victim.mem().l1i().setIndex(multiply_line);
    constexpr auto l1i = CacheSetMonitor::Structure::L1I;

    FlushReloadAttacker fr(victim.mem(), {square_line, multiply_line},
                           true);
    PrimeProbeAttacker pp(victim.mem(), {square_line, multiply_line},
                          true);

    victim.sim().restart();

    bool running = true;
    std::uint64_t slices = 0;
    while (running && slices < config.maxSlices) {
        if (config.flushReload)
            fr.flush();
        else
            pp.prime();
        if (config.ledger) {
            if (config.flushReload) {
                config.ledger->armLine("square", l1i, square_line);
                config.ledger->armLine("multiply", l1i, multiply_line);
            } else {
                config.ledger->armSet("square", l1i, square_set);
                config.ledger->armSet("multiply", l1i, multiply_set);
            }
        }

        running = victim.invokeSlice(config.sliceInstructions);
        ++slices;

        bool square_hot, multiply_hot;
        if (config.flushReload) {
            const auto probes = fr.reload();
            square_hot = probes[0].hit;
            multiply_hot = probes[1].hit;
            if (config.ledger) {
                config.ledger->observeLine("square", l1i, square_line,
                                           square_set, probes[0].latency,
                                           square_hot);
                config.ledger->observeLine("multiply", l1i, multiply_line,
                                           multiply_set, probes[1].latency,
                                           multiply_hot);
            }
        } else {
            const auto probes = pp.probe();
            square_hot = !probes[0].hit;
            multiply_hot = !probes[1].hit;
            if (config.ledger) {
                config.ledger->observeSet("square", l1i, square_set,
                                          probes[0].latency, square_hot);
                config.ledger->observeSet("multiply", l1i, multiply_set,
                                          probes[1].latency, multiply_hot);
            }
        }
        result.timeline.emplace_back(square_hot, multiply_hot);
    }

    // Parse: an episode starts when a line goes hot after being cold.
    // Each square episode is one bit; the bit is 1 iff a multiply
    // episode occurs before the next square episode.
    enum class Event : std::uint8_t { Square, Multiply };
    std::vector<Event> events;
    bool prev_square = false, prev_multiply = false;
    for (const auto &[sq, mul] : result.timeline) {
        if (sq && !prev_square)
            events.push_back(Event::Square);
        if (mul && !prev_multiply)
            events.push_back(Event::Multiply);
        prev_square = sq;
        prev_multiply = mul;
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i] != Event::Square)
            continue;
        const bool followed_by_multiply =
            i + 1 < events.size() && events[i + 1] == Event::Multiply;
        result.recoveredBits.push_back(followed_by_multiply);
    }

    // Score against ground truth (msb first).
    result.totalBits = workload.expBits;
    for (unsigned i = 0; i < workload.expBits; ++i) {
        const bool truth =
            (workload.exponent >> (workload.expBits - 1 - i)) & 1;
        if (i < result.recoveredBits.size() &&
            result.recoveredBits[i] == truth) {
            ++result.bitsCorrect;
        }
    }
    result.accuracy = result.totalBits == 0
        ? 0.0
        : static_cast<double>(result.bitsCorrect) / result.totalBits;
    return result;
}

} // namespace csd

/**
 * @file
 * Canned dynamic leakage measurements for `csd-lint --channels`.
 *
 * Each measure*Channels() helper runs a small, deterministic attack
 * loop against the canonical lint victim twice — undefended and under
 * the canonical Fig. 7 defense — with the channel monitor armed and an
 * ObservationLedger classifying every probe. The ledger's empirical
 * mutual information becomes MeasuredChannel records the cross-check
 * (verify/channel_crosscheck.hh) compares against the static proof.
 *
 * Only the *secret-dependent* site feeds the cross-check: "multiply"
 * for RSA (invoked iff the exponent bit is 1) and "t0" for AES (the
 * key-indexed table). Sites like RSA's "square" run on every exponent
 * bit regardless of the key, so their ledger MI measures observation
 * fidelity of the line, not secret leakage — a defended victim's
 * decoys can leave such a site "observable" while leaking nothing.
 * They are still reported (allSites) for the benches and JSON.
 *
 * The loops are deliberately tiny (a 16-bit exponent, ~100
 * encryptions): the cross-check compares per-observation bounds, which
 * are independent of key width and sample count beyond estimator
 * noise (CrossCheckOptions::toleranceBits absorbs the bias).
 */

#ifndef CSD_SEC_CHANNEL_MEASURE_HH
#define CSD_SEC_CHANNEL_MEASURE_HH

#include <string>
#include <vector>

#include "sec/observation_ledger.hh"
#include "verify/channel_crosscheck.hh"

namespace csd
{

/** Measurement knobs (defaults are the lint CI configuration). */
struct ChannelMeasureOptions
{
    /**
     * RSA probe interval in victim instructions. Chosen longer than
     * one decoy watchdog period so a defended slice always includes a
     * decoy fetch of `multiply` — the meter then sees the constant
     * "always hot" signal the defense presents, not probe-phase noise.
     */
    std::uint64_t rsaSliceInstructions = 1200;

    /** Encryptions per AES victim variant (random plaintexts). */
    unsigned aesSamples = 96;

    /** PRNG seed for the AES plaintext stream. */
    std::uint64_t seed = 7;

    /**
     * Defect injection for the lint self-test: added to every
     * cross-check record's measured bits, so a nonzero value makes the
     * defended measurement exceed its closed/residual bound and MUST
     * fail the cross-check. Never set outside tests/CI.
     */
    double injectBits = 0.0;
};

/** One target's dynamic measurement, both defense variants. */
struct ChannelMeasurement
{
    std::string target;  //!< "rsa" or "aes"

    /** Secret-dependent records for crossCheckChannels(). */
    std::vector<MeasuredChannel> crossCheck;

    /** Full ledger classification per variant (all sites). */
    std::vector<SiteMeasure> undefendedSites;
    std::vector<SiteMeasure> defendedSites;

    std::uint64_t observations = 0;  //!< total probes, both variants
};

/**
 * FLUSH+RELOAD on the `multiply` I-cache line across one 16-bit
 * modular exponentiation, undefended and defended (decoy fetches over
 * rsa_multiply, DIFT on the exponent + running result).
 */
ChannelMeasurement measureRsaChannels(const ChannelMeasureOptions &options = {});

/**
 * PRIME+PROBE on one Te0 line over random-plaintext encryptions,
 * undefended and defended (decoy loads over the T-tables, DIFT on the
 * round keys).
 */
ChannelMeasurement measureAesChannels(const ChannelMeasureOptions &options = {});

} // namespace csd

#endif // CSD_SEC_CHANNEL_MEASURE_HH

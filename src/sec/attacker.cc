#include "sec/attacker.hh"

#include "common/logging.hh"

namespace csd
{

FlushReloadAttacker::FlushReloadAttacker(MemHierarchy &mem,
                                         std::vector<Addr> targets,
                                         bool instr_side)
    : mem_(mem), targets_(std::move(targets)), instrSide_(instr_side)
{
    // A reload that at worst hits the LLC is "fast"; DRAM is "slow".
    threshold_ = mem_.params().l1d.hitLatency +
                 mem_.params().l2.hitLatency +
                 mem_.params().llc.hitLatency +
                 mem_.params().extraL2Latency;
    for (Addr &addr : targets_)
        addr = blockAlign(addr);
}

void
FlushReloadAttacker::flush()
{
    CacheSetMonitor::ScopedActor actor(mem_.setMonitor(),
                                       MonitorActor::Attacker);
    for (Addr addr : targets_)
        mem_.flush(addr);
}

std::vector<ProbeResult>
FlushReloadAttacker::reload()
{
    CacheSetMonitor::ScopedActor actor(mem_.setMonitor(),
                                       MonitorActor::Attacker);
    std::vector<ProbeResult> results;
    results.reserve(targets_.size());
    for (Addr addr : targets_) {
        const MemAccessResult access =
            instrSide_ ? mem_.fetchInstr(addr) : mem_.readData(addr);
        ProbeResult result;
        result.addr = addr;
        result.latency = access.latency;
        result.hit = access.latency <= threshold_;
        results.push_back(result);
    }
    return results;
}

PrimeProbeAttacker::PrimeProbeAttacker(MemHierarchy &mem,
                                       std::vector<Addr> victim_lines,
                                       bool instr_side, Addr attacker_base)
    : mem_(mem), victimLines_(std::move(victim_lines)),
      instrSide_(instr_side)
{
    Cache &l1 = instrSide_ ? mem_.l1i() : mem_.l1d();
    l1HitLatency_ = l1.hitLatency();
    const Addr set_stride =
        static_cast<Addr>(l1.numSets()) * cacheBlockSize;

    evictionSets_.reserve(victimLines_.size());
    for (Addr line : victimLines_) {
        const unsigned set = l1.setIndex(line);
        std::vector<Addr> eviction_set;
        eviction_set.reserve(l1.assoc());
        for (unsigned way = 0; way < l1.assoc(); ++way) {
            eviction_set.push_back(attacker_base +
                                   static_cast<Addr>(set) *
                                       cacheBlockSize +
                                   way * set_stride);
        }
        evictionSets_.push_back(std::move(eviction_set));
    }
}

MemAccessResult
PrimeProbeAttacker::access(Addr addr)
{
    return instrSide_ ? mem_.fetchInstr(addr) : mem_.readData(addr);
}

void
PrimeProbeAttacker::prime()
{
    CacheSetMonitor::ScopedActor actor(mem_.setMonitor(),
                                       MonitorActor::Attacker);
    for (const auto &eviction_set : evictionSets_)
        for (Addr addr : eviction_set)
            access(addr);
    // Second pass guarantees full residency even with LRU interference
    // between the attacker's own lines.
    for (const auto &eviction_set : evictionSets_)
        for (Addr addr : eviction_set)
            access(addr);
}

std::vector<ProbeResult>
PrimeProbeAttacker::probe()
{
    CacheSetMonitor::ScopedActor actor(mem_.setMonitor(),
                                       MonitorActor::Attacker);
    std::vector<ProbeResult> results;
    results.reserve(evictionSets_.size());
    for (std::size_t idx = 0; idx < evictionSets_.size(); ++idx) {
        ProbeResult result;
        result.addr = victimLines_[idx];
        bool all_hit = true;
        Cycles total = 0;
        for (Addr addr : evictionSets_[idx]) {
            const MemAccessResult acc = access(addr);
            total += acc.latency;
            if (acc.latency > l1HitLatency_)
                all_hit = false;
        }
        result.latency = total;
        result.hit = all_hit;
        results.push_back(result);
    }
    return results;
}

} // namespace csd

/**
 * @file
 * The top-level simulator: program-order driver connecting the
 * translator (native or context-sensitive), the functional executor,
 * the decode front end, the out-of-order back end, the cache
 * hierarchy, DIFT, and the power-gating controller.
 *
 * Two fidelity levels share all functional and cache state:
 *  - detailed: full front-end + back-end cycle accounting (performance
 *    experiments, Figs. 8-16)
 *  - cache-only: functional execution with cache residency/timing only
 *    (security experiments, Fig. 7 — attack success depends on cache
 *    state, not pipeline cycles)
 */

#ifndef CSD_SIM_SIMULATION_HH
#define CSD_SIM_SIMULATION_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "cpu/arch_state.hh"
#include "cpu/backend.hh"
#include "cpu/branch_pred.hh"
#include "cpu/cpi_stack.hh"
#include "cpu/executor.hh"
#include "cpu/lifecycle.hh"
#include "decode/flow_cache.hh"
#include "decode/frontend.hh"
#include "decode/translator.hh"
#include "dift/taint.hh"
#include "isa/program.hh"
#include "memory/hierarchy.hh"
#include "obs/context.hh"
#include "obs/manifest.hh"
#include "power/energy.hh"
#include "power/gating.hh"

namespace csd
{

class ContextSensitiveDecoder;
class FastPath;

/** Simulation fidelity. */
enum class SimMode : std::uint8_t
{
    Detailed,   //!< front end + OoO back end cycle model
    CacheOnly,  //!< functional + cache residency (fast)
};

/** Simulator configuration. */
struct SimParams
{
    SimMode mode = SimMode::Detailed;
    FrontEndParams frontend;
    MemHierarchyParams mem;
    BackEndParams backend;
    BranchPredParams bpred;
    EnergyParams energy;
    std::uint64_t maxInstructions = 1ull << 40;

    /**
     * The observability context this simulation records into (stats
     * detail, event/lifecycle tracing, log sink, host profiler). Null
     * = the simulation creates and owns a private context inheriting
     * the constructing thread's configuration; non-null = share the
     * caller's context (e.g. DuoSimulation's two halves record one
     * combined trace). The caller keeps ownership.
     */
    ObservabilityContext *obs = nullptr;
};

/** One interval-sampler observation: selected stats at a cycle. */
struct IntervalSample
{
    Tick cycle = 0;
    std::vector<double> values;
};

/** The simulator. */
class Simulation
{
  public:
    Simulation(const Program &prog, const SimParams &params = {});

    /**
     * Co-located construction: share @p shared_mem with other
     * simulations (hardware contexts on one core / socket). The caller
     * keeps ownership of the hierarchy.
     */
    Simulation(const Program &prog, const SimParams &params,
               MemHierarchy *shared_mem);

    ~Simulation();

    // --- wiring (before run) ---------------------------------------------

    /** Use a custom translator (e.g. the CSD); default is native. */
    void setTranslator(Translator *translator);

    /** Convenience: install a CSD and keep the devectorization hook. */
    void setCsd(ContextSensitiveDecoder *csd);

    /** Enable DIFT propagation. */
    void setTaintTracker(TaintTracker *taint);

    /** Drive VPU power gating. */
    void setPowerController(PowerGateController *power);

    /**
     * Toggle the host-side predecoded-flow cache (decode/flow_cache.hh).
     * On by default; CSD_FLOW_CACHE=0 in the environment disables it.
     * Purely a host optimization: simulated timing and statistics are
     * bit-identical either way (tests/sim/test_flow_cache.cc).
     */
    void setFlowCacheEnabled(bool on);
    bool flowCacheEnabled() const { return flowCacheEnabled_; }

    /** Host-side hit/miss accounting for the predecoded-flow cache. */
    const FlowCache &flowCache() const { return flowCache_; }

    /**
     * Toggle the superblock threaded-code tier (sim/fastpath.hh): in
     * cache-only mode, hot straight-line regions of cached flows are
     * compiled into flat pre-resolved uop streams and executed without
     * the per-macro interpreter overhead. On by default;
     * CSD_SUPERBLOCK=0 in the environment disables it. Purely a host
     * optimization: simulated timing and statistics are bit-identical
     * either way (tests/sim/test_superblock.cc). The tier engages only
     * when the flow cache is enabled, no power controller is attached,
     * and tracing is off (run() re-checks per call).
     */
    void setSuperblockEnabled(bool on);
    bool superblockEnabled() const { return superblockEnabled_; }

    /**
     * Region-entry count at which a hot head is compiled (>= 1; default
     * 16). Also set by CSD_SUPERBLOCK_THRESHOLD in the environment.
     */
    void setSuperblockThreshold(std::uint32_t threshold);

    /** The superblock tier's host-side counters and block cache. */
    const FastPath &fastPath() const { return *fastpath_; }

    /**
     * Sample the statistics named by @p stat_paths (dotted paths under
     * the "sim" group, e.g. "instructions", "ipc",
     * "frontend.slots_legacy") every @p interval cycles into an
     * in-memory time series. Pass an empty list for the default set
     * {"instructions", "ipc"}. Paths are validated on the first
     * sample; unknown paths are fatal. The series survives restart()
     * so attack harnesses see all invocations on one timeline.
     */
    void sampleEvery(Tick interval,
                     std::vector<std::string> stat_paths = {});

    /** Stat paths captured by the interval sampler. */
    const std::vector<std::string> &sampledStats() const
    {
        return samplePaths_;
    }

    /** The recorded time series (cumulative values at each sample). */
    const std::vector<IntervalSample> &samples() const { return samples_; }

    /** Write the time series as CSV: "cycle,<path>,<path>,..." */
    void writeSamplesCsv(std::ostream &os) const;

    // --- instruction-grain observability -----------------------------------

    /**
     * Enable CPI-stack accounting (detailed mode only). Every cycle
     * from this point on is attributed to exactly one CpiBucket;
     * enable before the first step() so the buckets sum to cycles().
     * Also armed at construction by CSD_CPI_STACK=1.
     */
    CpiStack &enableCpiStack();

    /** The accountant, or null when not enabled. */
    CpiStack *cpiStack() { return cpiStack_.get(); }
    const CpiStack *cpiStack() const { return cpiStack_.get(); }

    /**
     * Enable per-uop lifecycle tracing into a bounded ring (detailed
     * mode only; records export as O3PipeView / Kanata). Also armed at
     * construction by CSD_LIFECYCLE=1 with CSD_LIFECYCLE_CAPACITY and,
     * when CSD_LIFECYCLE_FILE names a path, exported at destruction.
     */
    LifecycleTracer &enableLifecycle(std::size_t capacity = 1 << 16);

    /** The lifecycle tracer, or null when not enabled. */
    LifecycleTracer *lifecycle() { return lifecycle_.get(); }

    // --- execution ---------------------------------------------------------

    /** Execute one macro-op. Returns false once halted. */
    bool step();

    /** Execute up to @p max_instructions; returns number executed. */
    std::uint64_t run(std::uint64_t max_instructions);

    /** Run until the program halts. */
    void runToHalt();

    /**
     * Re-arm the program for another run (attack harnesses invoke the
     * victim thousands of times): resets PC/halted, keeps all cache,
     * memory, predictor, translator, and statistic state.
     */
    void restart();

    bool halted() const { return state_.halted; }

    // --- results -----------------------------------------------------------

    Tick cycles() const { return cycles_; }
    std::uint64_t instructions() const { return instructions_.value(); }
    std::uint64_t uopsExecuted() const;

    /**
     * Dynamic uops processed in any fidelity mode (cache-only runs
     * never drive the back end, so uopsExecuted() stays 0 there).
     * Host-side bookkeeping, not part of the stat tree.
     */
    std::uint64_t uopsSimulated() const { return uopsSimulated_; }
    std::uint64_t slotsDelivered() const { return slotsDelivered_.value(); }
    double ipc() const;

    /** Energy consumed so far, with static terms up to cycles(). */
    EnergyBreakdown energy() const;

    ArchState &state() { return state_; }
    MemHierarchy &mem() { return *mem_; }
    FrontEnd &frontend() { return *frontend_; }
    BackEnd &backend() { return *backend_; }
    BranchPredictor &bpred() { return *bpred_; }
    const Program &program() const { return prog_; }
    const EnergyModel &energyModel() const { return energyModel_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** The observability context this simulation records into. */
    ObservabilityContext &obs() const { return *obs_; }

    /**
     * Hierarchical JSON dump of the whole stat tree, led by a
     * "manifest" member (obs/manifest.hh) recording the configuration
     * hash, build/host provenance, translator epoch, and host
     * wall-time phases of this run.
     */
    void dumpStatsJson(std::ostream &os) const;

    /** The run-provenance record emitted by dumpStatsJson(). */
    obs::Manifest buildManifest() const;

  private:
    /**
     * Run @p fn with its host time attributed to @p phase when the
     * profiler is on. The disabled branch calls @p fn with no Scope in
     * scope at all: keeping the clock reads out of the hot loop's
     * codegen is worth the duplicated call — an unconditional
     * HostProfiler::Scope costs double-digit percent simulation
     * throughput even when it never reads the clock.
     */
    template <typename Fn>
    decltype(auto) profiled(HostPhase phase, Fn &&fn)
    {
        HostProfiler &prof = obs_->profiler();
        if (prof.enabled()) [[unlikely]] {
            HostProfiler::Scope scope(prof, phase);
            return fn();
        }
        return fn();
    }

    void maybeSample();
    const UopFlow &translatedFlow(const MacroOp &op);
    void stepDetailed(const MacroOp &op, const UopFlow &flow,
                      const FlowResult &result);
    void stepCacheOnly(const MacroOp &op, const UopFlow &flow,
                       const FlowResult &result);

    const Program &prog_;
    SimParams params_;

    // Observability context, constructed (and bound to the building
    // thread) before any component so construction-time trace/log
    // events already land in the right buffers.
    std::unique_ptr<ObservabilityContext> ownedObs_;  //!< null if shared
    ObservabilityContext *obs_;

    ArchState state_;
    FunctionalExecutor executor_;
    std::unique_ptr<MemHierarchy> ownedMem_;
    MemHierarchy *mem_;
    std::unique_ptr<FrontEnd> frontend_;
    std::unique_ptr<BackEnd> backend_;
    std::unique_ptr<BranchPredictor> bpred_;
    NativeTranslator nativeTranslator_;
    Translator *translator_;
    ContextSensitiveDecoder *csd_ = nullptr;
    TaintTracker *taint_ = nullptr;
    PowerGateController *power_ = nullptr;
    EnergyModel energyModel_;

    Tick cycles_ = 0;
    Addr lastFetchBlock_ = invalidAddr;
    unsigned curCtx_ = 0;
    std::uint64_t uopsSimulated_ = 0;

    // Predecoded-flow cache (host optimization, see translatedFlow()).
    FlowCache flowCache_;
    bool flowCacheEnabled_ = true;

    // Superblock tier (host optimization, see run()). FastPath is a
    // friend: it replicates step()'s cache-only bookkeeping in place.
    friend class FastPath;
    std::unique_ptr<FastPath> fastpath_;
    bool superblockEnabled_ = true;
    UopFlow scratchFlow_;  //!< holds the flow on the uncached path
    FlowResult scratchResult_;  //!< reused across steps (executeInto)

    // Macro-fusion pairing state (previous committed macro-op; points
    // into prog_.code(), null right after restart()).
    const MacroOp *prevMacro_ = nullptr;
    Tick lastSlotCycle_ = 0;

    // IDQ backpressure ring (fused slots).
    std::vector<Tick> idqRing_;
    std::size_t idqIdx_ = 0;
    std::uint64_t idqCount_ = 0;

    // Dynamic energy accumulators (nJ).
    double coreDynamic_ = 0;
    double vpuDynamic_ = 0;
    double frontendDynamic_ = 0;

    // Instruction-grain observability (both null => zero per-uop cost
    // beyond two pointer tests).
    std::unique_ptr<CpiStack> cpiStack_;
    std::unique_ptr<LifecycleTracer> lifecycle_;
    std::string lifecycleExportPath_;
    std::uint64_t lifecycleFlushToken_ = 0;  //!< context flush-hook handle
    std::string channelExportPath_;  //!< set-heatmap base ("%c" expanded)
    std::uint64_t channelFlushToken_ = 0;
    std::uint64_t feL1iSeen_ = 0;     //!< fetch-stall counter watermark
    std::uint64_t feDecodeSeen_ = 0;  //!< decode-bw counter watermark

    // Interval sampler state. The series intentionally survives
    // restart(): attack harnesses re-arm thousands of times and want
    // one continuous timeline.
    Tick sampleInterval_ = 0;
    Tick nextSampleAt_ = 0;
    std::vector<std::string> samplePaths_;
    std::vector<IntervalSample> samples_;

    StatGroup stats_;
    Counter instructions_;
    Counter slotsDelivered_;
    Counter decoyUopsExecuted_;
    Counter devectUopsExecuted_;
    Counter macroFusedPairs_;
    Counter vpuStalls_;
    Distribution flowLen_{0, 32, 16};
    Formula ipc_;
    Formula uopsPerInstr_;
    Formula l1dMpki_;
    Formula decoyFrac_;
};

} // namespace csd

#endif // CSD_SIM_SIMULATION_HH

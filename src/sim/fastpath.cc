#include "sim/fastpath.hh"

#include "common/stats.hh"
#include "csd/csd.hh"
#include "sim/simulation.hh"

// Computed-goto (labels-as-values) dispatch where available; the
// portable build falls back to a dense switch over SbHandler.
#if defined(__GNUC__) || defined(__clang__)
#define CSD_SB_COMPUTED_GOTO 1
#else
#define CSD_SB_COMPUTED_GOTO 0
#endif

namespace csd
{

std::uint64_t
FastPath::run(std::uint64_t budget)
{
    // Resolve the per-run-invariant branches once: the concrete
    // translator type (native hooks fold away; the CSD's inline
    // hooks devirtualize) and DIFT presence select a specialization,
    // so the per-macro loop carries no dead virtual calls. run() is
    // re-entered at every region head, so the dynamic_cast result is
    // memoized until the simulation swaps translators.
    Translator *const tr = sim_.translator_;
    if (tr != resolvedFor_) {
        resolvedFor_ = tr;
        resolvedCsd_ = dynamic_cast<ContextSensitiveDecoder *>(tr);
    }
    const bool taint = sim_.taint_ != nullptr;
    if (tr == &sim_.nativeTranslator_) {
        NativeTranslator &native = sim_.nativeTranslator_;
        return taint ? runImpl<NativeTranslator, true>(native, budget)
                     : runImpl<NativeTranslator, false>(native, budget);
    }
    if (ContextSensitiveDecoder *csd = resolvedCsd_) {
        return taint
            ? runImpl<ContextSensitiveDecoder, true>(*csd, budget)
            : runImpl<ContextSensitiveDecoder, false>(*csd, budget);
    }
    return taint ? runImpl<Translator, true>(*tr, budget)
                 : runImpl<Translator, false>(*tr, budget);
}

template <class Tr, bool Taint>
std::uint64_t
FastPath::runImpl(Tr &tr, std::uint64_t budget)
{
    // Mirror step()'s maxInstructions gate.
    const std::uint64_t max = sim_.params_.maxInstructions;
    const std::uint64_t done = sim_.instructions_.value();
    if (done >= max)
        return 0;
    budget = std::min(budget, max - done);

    const MacroOp *const code_base = sim_.prog_.code().data();
    std::uint64_t executed = 0;

    while (executed < budget && !sim_.state_.halted) {
        const MacroOp *op = sim_.prog_.at(sim_.state_.pc);
        if (!op)
            break;  // the interpreter owns the fetch-fault fatal
        const auto slot = static_cast<std::size_t>(op - code_base);
        if (slot >= cache_.slots())
            break;
        if (op->opcode == MacroOpcode::Halt)
            break;  // Halt commits via the interpreter, uncounted

        // Fire any due watchdog before consulting, exactly where the
        // interpreter would (step() ticks before translating). The
        // matching per-macro tick in execBlock at the same cycle is a
        // no-op: the watchdog disarms when it fires.
        tr.tick(sim_.cycles_);
        const std::uint64_t epoch = tr.translationEpoch();

        Superblock *block = cache_.at(slot);
        if (block && block->epoch != epoch) {
            cache_.invalidate(slot);
            ++counters_.invalidated;
            block = nullptr;
        }
        if (!block) {
            if (sim_.flowCache_.bumpHeat(slot) < threshold_)
                break;
            std::unique_ptr<Superblock> built =
                SuperblockBuilder(sim_.prog_, sim_.flowCache_,
                                  *sim_.translator_, sim_.energyModel_,
                                  limits_)
                    .build(sim_.state_.pc);
            if (!built) {
                // Nothing compilable here (uncached/unstable region);
                // back off so the next visits don't retry immediately.
                ++counters_.buildAborts;
                sim_.flowCache_.coolSlot(slot);
                break;
            }
            ++counters_.built;
            counters_.blockMacros += built->macros.size();
            counters_.blockUops += built->uops.size();
            cache_.install(slot, std::move(built));
            block = cache_.at(slot);
        }

        ++counters_.entries;
        const SbExit exit =
            execBlock<Tr, Taint>(tr, *block, budget, executed);
        ++counters_.exits[static_cast<unsigned>(exit)];
        if (exit != SbExit::End && exit != SbExit::Branch)
            break;  // epoch/stability/budget: the interpreter takes over
        // End or Branch landed on a new region head: chain into its
        // block (or compile it) without surfacing to the interpreter.
    }
    return executed;
}

template <class Tr, bool Taint>
SbExit
FastPath::execBlock(Tr &tr, const Superblock &block, std::uint64_t budget,
                    std::uint64_t &executed)
{
    ArchState &state = sim_.state_;
    MemHierarchy &mem = *sim_.mem_;
    FunctionalExecutor &exec = sim_.executor_;

    // The per-macro bookkeeping accumulates in locals (registers) and
    // flushes to the simulation members at every exit, so the loop
    // carries no read-modify-write of member counters per macro. The
    // final member values are identical to per-macro updates — these
    // are all integer sums. Energy scalars are NOT localized: double
    // addition is order-sensitive and must stay per-uop (see RETIRE).
    const bool detail = statsDetailEnabled();
    const bool sampling = sim_.sampleInterval_ != 0;
    Tick cycles = sim_.cycles_;
    Addr last_fetch = sim_.lastFetchBlock_;
    std::uint64_t d_instr = 0;
    std::uint64_t d_uops = 0;
    std::uint64_t d_hits = 0;
    std::uint64_t d_slots = 0;
    std::uint64_t d_decoys = 0;

    const auto flush = [&] {
        sim_.cycles_ = cycles;
        sim_.lastFetchBlock_ = last_fetch;
        sim_.instructions_ += d_instr;
        sim_.uopsSimulated_ += d_uops;
        sim_.slotsDelivered_ += d_slots;
        sim_.decoyUopsExecuted_ += d_decoys;
        sim_.flowCache_.hits += d_hits;
        counters_.uopsRetired += d_uops;
        d_instr = d_uops = d_hits = d_slots = d_decoys = 0;
    };

    for (const SbMacro &m : block.macros) {
        if (executed >= budget) {
            flush();
            return SbExit::Budget;
        }

        // The interpreter's per-step translator protocol, in order:
        // tick (watchdog), epoch currency, per-op stability. Any
        // mid-block trigger change surfaces here at the macro boundary
        // and hands the rest of the region to the interpreter. For the
        // native translator every check folds to a constant.
        tr.tick(cycles);
        if (tr.translationEpoch() != block.epoch) {
            flush();
            return SbExit::EpochBump;
        }
        if (!tr.translationStable(*m.op)) {
            flush();
            return SbExit::Unstable;
        }

        state.cycleHint = cycles;
        // The interpreted step would probe the flow cache and hit.
        ++d_hits;
        tr.noteCachedTranslation(*m.op, *m.flow, m.ctx);
        sim_.curCtx_ = m.ctx;

        // Instruction fetch: touch the I-cache once per block, with the
        // same cross-macro dedup the interpreter keeps.
        Cycles latency = 0;
        for (Addr fetch = m.fetchFirst; fetch <= m.fetchLast;
             fetch += cacheBlockSize) {
            if (fetch != last_fetch) {
                latency += mem.fetchInstr(fetch).latency;
                last_fetch = fetch;
            }
        }

        Addr next_pc = m.fallThrough;
        bool took_branch = false;
        if constexpr (Taint) {
            taintScratch_.dynUops.clear();
            taintScratch_.dynUops.reserve(m.dynCount);
        }

        const SbOp *s = &block.uops[m.uopBegin];
        const SbOp *const end = s + (m.uopEnd - m.uopBegin);
        Addr eff = invalidAddr;
        bool taken = false;

// Per-uop retire: the accounting stepCacheOnly keeps for delivered
// (non-eliminated) uops, plus the DynUop record DIFT replays. Energy
// adds stay per-uop in expansion order — double addition is not
// associative, and the equivalence tests compare energy bit-exactly.
#define CSD_SB_RETIRE()                                                   \
    do {                                                                  \
        if (s->counted) {                                                 \
            ++d_slots;                                                    \
            if (s->uop.decoy)                                             \
                ++d_decoys;                                               \
            if (s->vpu)                                                   \
                sim_.vpuDynamic_ += s->energy;                            \
            else                                                          \
                sim_.coreDynamic_ += s->energy;                           \
        }                                                                 \
        if constexpr (Taint)                                              \
            taintScratch_.dynUops.push_back(DynUop{&s->uop, eff, taken}); \
    } while (0)

#if CSD_SB_COMPUTED_GOTO
        static const void *const dispatch[] = {
            &&h_Load, &&h_Store, &&h_StoreImm, &&h_LoadVec, &&h_StoreVec,
            &&h_Br, &&h_BrInd, &&h_CacheFlush, &&h_ReadCycles, &&h_Nop,
            &&h_Vector, &&h_VExtract, &&h_ScalarFp, &&h_ScalarAlu,
        };
        static_assert(sizeof(dispatch) / sizeof(dispatch[0]) ==
                      static_cast<std::size_t>(SbHandler::NumHandlers));

#define CSD_SB_NEXT()                                                     \
    do {                                                                  \
        CSD_SB_RETIRE();                                                  \
        if (++s == end)                                                   \
            goto uops_done;                                               \
        eff = invalidAddr;                                                \
        taken = false;                                                    \
        goto *dispatch[static_cast<unsigned>(s->handler)];                \
    } while (0)
#define CSD_SB_HANDLER(name) h_##name
#else
#define CSD_SB_NEXT() break
#define CSD_SB_HANDLER(name) case SbHandler::name
#endif

#if CSD_SB_COMPUTED_GOTO
        if (s == end)
            goto uops_done;
        goto *dispatch[static_cast<unsigned>(s->handler)];
#else
        for (; s != end; ++s, eff = invalidAddr, taken = false) {
            switch (s->handler) {
#endif
// Handler bodies are shared between both dispatch skeletons. Each body
// mirrors one case group of FunctionalExecutor::execUop, fused with
// the timing probe stepCacheOnly takes for that uop category.
CSD_SB_HANDLER(Load):
{
    const Uop &u = s->uop;
    eff = exec.agen(u);
    const std::uint64_t val = state.mem.read(eff, u.memSize);
    if (u.dst.valid())
        state.writeInt(u.dst, val);
    if (s->counted) {
        latency += (u.instrFetch ? mem.fetchInstr(eff) : mem.readData(eff))
                       .latency;
    }
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(Store):
{
    const Uop &u = s->uop;
    eff = exec.agen(u);
    state.mem.write(eff, u.memSize, state.readInt(u.src3));
    if (s->counted)
        mem.writeData(eff);
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(StoreImm):
{
    const Uop &u = s->uop;
    eff = exec.agen(u);
    state.mem.write(eff, u.memSize, static_cast<std::uint64_t>(u.imm));
    if (s->counted)
        mem.writeData(eff);
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(LoadVec):
{
    const Uop &u = s->uop;
    eff = exec.agen(u);
    state.writeVecReg(u.dst, state.mem.readVec(eff));
    if (s->counted) {
        latency += (u.instrFetch ? mem.fetchInstr(eff) : mem.readData(eff))
                       .latency;
    }
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(StoreVec):
{
    const Uop &u = s->uop;
    eff = exec.agen(u);
    state.mem.writeVec(eff, state.readVecReg(u.src3));
    if (s->counted)
        mem.writeData(eff);
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(Br):
{
    const Uop &u = s->uop;
    taken = evalCond(u.cond, state.flags);
    if (taken) {
        next_pc = u.target;
        took_branch = true;
    }
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(BrInd):
{
    taken = true;
    next_pc = state.readInt(s->uop.src1);
    took_branch = true;
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(CacheFlush):
{
    eff = exec.agen(s->uop);
    if (s->counted) {
        mem.flush(eff);
        latency += 40;
    }
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(ReadCycles):
{
    state.writeInt(s->uop.dst, state.cycleHint);
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(Nop):
{
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(Vector):
{
    exec.execVector(s->uop);
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(VExtract):
{
    const Uop &u = s->uop;
    state.writeInt(u.dst, state.readVecReg(u.src1).lane(
                              8, static_cast<unsigned>(u.imm) & 1));
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(ScalarFp):
{
    exec.execScalarFp(s->uop);
}
    CSD_SB_NEXT();
CSD_SB_HANDLER(ScalarAlu):
{
    exec.execScalarAlu(s->uop);
}
    CSD_SB_NEXT();
#if CSD_SB_COMPUTED_GOTO
uops_done:;
#else
              default:
                break;
            }
            CSD_SB_RETIRE();
        }
#endif

#undef CSD_SB_HANDLER
#undef CSD_SB_NEXT
#undef CSD_SB_RETIRE

        state.pc = next_pc;
        if constexpr (Taint) {
            taintScratch_.nextPc = next_pc;
            taintScratch_.tookBranch = took_branch;
            sim_.taint_->propagate(*m.flow, taintScratch_);
        }

        // stepCacheOnly's pseudo-cycle advance + step()'s commit
        // bookkeeping, with the deltas resolved at build time.
        cycles += m.delivered + latency / 4;
        ++d_instr;
        d_uops += m.dynCount;
        if (detail)
            sim_.flowLen_.sample(static_cast<double>(m.dynCount));
        sim_.prevMacro_ = m.op;
        ++executed;
        if (sampling) {
            // The interval sampler reads the member counters, so they
            // must be current at every potential sample point.
            flush();
            if (sim_.cycles_ >= sim_.nextSampleAt_)
                sim_.maybeSample();
        }

        if (next_pc != m.fallThrough) {
            flush();
            return SbExit::Branch;
        }
    }
    flush();
    return SbExit::End;
}

} // namespace csd

#include "sim/simulation.hh"

#include <cstdlib>
#include <limits>
#include <mutex>

#include "common/env.hh"
#include "common/logging.hh"
#include "csd/csd.hh"
#include "csd/devect.hh"
#include "sim/fastpath.hh"

namespace csd
{

namespace
{

/**
 * Is this uop part of the *expansion* a devectorized flow introduces?
 * The vector->scalar rewrite lives in decoder-temporary registers: the
 * extract/insert glue and the per-lane scalar compute all touch a
 * temporary, while the flow's original loads/stores/address math do
 * not.
 */
bool
devectExpansionUop(const Uop &uop)
{
    const auto temp = [](const RegId &reg) {
        return reg.isIntTemp() || reg.isVecTemp();
    };
    return temp(uop.dst) || temp(uop.src1) || temp(uop.src2) ||
           temp(uop.src3);
}

/**
 * Bind @p ctx to the constructing thread from inside the member-init
 * list, so components built after obs_ already record into it.
 */
ObservabilityContext *
bindObs(ObservabilityContext *ctx)
{
    ctx->bindToThread();
    return ctx;
}

} // namespace

Simulation::Simulation(const Program &prog, const SimParams &params)
    : Simulation(prog, params, nullptr)
{
}

Simulation::Simulation(const Program &prog, const SimParams &params,
                       MemHierarchy *shared_mem)
    : prog_(prog),
      params_(params),
      ownedObs_(params.obs ? nullptr
                           : std::make_unique<ObservabilityContext>()),
      obs_(bindObs(params.obs ? params.obs : ownedObs_.get())),
      executor_(state_),
      ownedMem_(shared_mem ? nullptr
                           : std::make_unique<MemHierarchy>(params.mem)),
      mem_(shared_mem ? shared_mem : ownedMem_.get()),
      frontend_(std::make_unique<FrontEnd>(params.frontend, mem_)),
      backend_(std::make_unique<BackEnd>(params.backend, mem_)),
      bpred_(std::make_unique<BranchPredictor>(params.bpred)),
      translator_(&nativeTranslator_),
      energyModel_(params.energy),
      stats_("sim")
{
    state_.loadProgram(prog);
    idqRing_.assign(28, 0);

    // Predecoded-flow cache: on unless CSD_FLOW_CACHE=0 (host-side
    // only; simulated timing/stats are identical either way). One
    // slot per static instruction, indexed by position in code().
    flowCache_.reset(prog.code().size());
    if (const char *fc = std::getenv("CSD_FLOW_CACHE"))
        flowCacheEnabled_ = parseBoolSetting("CSD_FLOW_CACHE", fc);

    // Superblock tier (host-side; cache-only mode only, see run()).
    fastpath_ = std::make_unique<FastPath>(*this);
    fastpath_->reset(prog.code().size());
    if (const char *sb = std::getenv("CSD_SUPERBLOCK"))
        superblockEnabled_ = parseBoolSetting("CSD_SUPERBLOCK", sb);
    if (const char *st = std::getenv("CSD_SUPERBLOCK_THRESHOLD")) {
        fastpath_->setThreshold(static_cast<std::uint32_t>(
            parsePositiveSetting("CSD_SUPERBLOCK_THRESHOLD", st)));
    }

    stats_.addCounter("instructions", &instructions_,
                      "macro-ops committed");
    stats_.addCounter("slots_delivered", &slotsDelivered_,
                      "fused-domain slots sent to the back end");
    stats_.addCounter("decoy_uops_executed", &decoyUopsExecuted_,
                      "decoy uops that flowed through the pipeline");
    stats_.addCounter("devect_uops_executed", &devectUopsExecuted_,
                      "uops from devectorized flows");
    stats_.addCounter("macro_fused_pairs", &macroFusedPairs_,
                      "cmp/test+jcc pairs macro-fused");
    stats_.addCounter("vpu_wake_stalls", &vpuStalls_,
                      "cycles stalled on conventional demand wakes");
    stats_.addDistribution("flow_len", &flowLen_,
                           "dynamic uops per macro-op flow");
    ipc_ = [this] {
        return static_cast<double>(instructions_.value()) /
               static_cast<double>(cycles_);
    };
    stats_.addFormula("ipc", &ipc_, "committed macro-ops per cycle");
    uopsPerInstr_ = [this] {
        return static_cast<double>(backend_->uopsExecuted()) /
               static_cast<double>(instructions_.value());
    };
    stats_.addFormula("uops_per_instr", &uopsPerInstr_,
                      "executed uops per committed macro-op");
    l1dMpki_ = [this] {
        return 1000.0 *
               static_cast<double>(
                   mem_->l1d().stats().counterValue("misses")) /
               static_cast<double>(instructions_.value());
    };
    stats_.addFormula("l1d_mpki", &l1dMpki_,
                      "L1D misses per kilo-instruction");
    decoyFrac_ = [this] {
        return static_cast<double>(decoyUopsExecuted_.value()) /
               static_cast<double>(slotsDelivered_.value());
    };
    stats_.addFormula("decoy_frac", &decoyFrac_,
                      "decoy uops per delivered slot");
    stats_.addChild(&frontend_->stats());
    stats_.addChild(&backend_->stats());
    stats_.addChild(&bpred_->stats());
    stats_.addChild(&mem_->stats());

    // Instruction-grain observability, armed through the context
    // (which parsed CSD_LIFECYCLE* strictly) so existing harnesses
    // grow traces without code changes.
    if (params_.mode == SimMode::Detailed) {
        const char *cpi_env = std::getenv("CSD_CPI_STACK");
        if (cpi_env && *cpi_env && *cpi_env != '0')
            enableCpiStack();
        const ObservabilityContext::LifecycleConfig &lc =
            obs_->lifecycleConfig();
        if (lc.enabled) {
            enableLifecycle(lc.capacity);
            // "%c" names a per-context file (parallel simulations).
            lifecycleExportPath_ =
                expandContextPath(lc.exportPath, obs_->id());
            if (!lifecycleExportPath_.empty()) {
                // Abnormal-exit safety: the context flushes this ring
                // from atexit/SIGINT/SIGTERM, so an interrupted run
                // still leaves a loadable (truncated) pipeline trace.
                lifecycleFlushToken_ = obs_->addFlushHook([this] {
                    if (lifecycle_)
                        lifecycle_->exportFile(lifecycleExportPath_);
                });
            }
        }
    }

    // Channel telemetry (memory/set_monitor.hh), armed through the
    // context (CSD_CHANNEL_MONITOR / CSD_CHANNEL_HEATMAP) in any
    // fidelity mode — the Fig. 7 attacks run cache-only.
    const ObservabilityContext::ChannelMonitorConfig &cm =
        obs_->channelMonitorConfig();
    if (cm.enabled) {
        SetMonitorConfig monitor_config;
        monitor_config.heatmapInterval = cm.heatmapInterval;
        CacheSetMonitor &monitor = mem_->armSetMonitor(monitor_config);
        frontend_->uopCache().setMonitor(&monitor);
        channelExportPath_ = expandContextPath(cm.exportPath, obs_->id());
        if (!channelExportPath_.empty()) {
            channelFlushToken_ = obs_->addFlushHook([this] {
                if (const CacheSetMonitor *mon = mem_->setMonitor())
                    mon->exportFiles(channelExportPath_);
            });
        }
    }
}

Simulation::~Simulation()
{
    if (lifecycleFlushToken_ != 0)
        obs_->removeFlushHook(lifecycleFlushToken_);
    if (lifecycle_ && !lifecycleExportPath_.empty()) {
        std::lock_guard<std::mutex> lock(ObservabilityContext::exportLock());
        lifecycle_->exportFile(lifecycleExportPath_);
    }
    if (channelFlushToken_ != 0)
        obs_->removeFlushHook(channelFlushToken_);
    if (!channelExportPath_.empty() && mem_->setMonitor()) {
        profiled(HostPhase::ChannelMonitor, [&] {
            std::lock_guard<std::mutex> lock(
                ObservabilityContext::exportLock());
            mem_->setMonitor()->exportFiles(channelExportPath_);
        });
    }
}

CpiStack &
Simulation::enableCpiStack()
{
    if (params_.mode != SimMode::Detailed)
        csd_fatal("Simulation: CPI-stack accounting requires detailed "
                  "mode");
    if (!cpiStack_) {
        cpiStack_ = std::make_unique<CpiStack>(cycles_);
        feL1iSeen_ = frontend_->fetchStallCycles();
        feDecodeSeen_ = frontend_->decodeBwCycles();
    }
    return *cpiStack_;
}

LifecycleTracer &
Simulation::enableLifecycle(std::size_t capacity)
{
    if (params_.mode != SimMode::Detailed)
        csd_fatal("Simulation: lifecycle tracing requires detailed mode");
    if (!lifecycle_)
        lifecycle_ = std::make_unique<LifecycleTracer>(capacity);
    else
        lifecycle_->setCapacity(capacity);
    return *lifecycle_;
}

void
Simulation::setTranslator(Translator *translator)
{
    translator_ = translator ? translator : &nativeTranslator_;
    // Cached flows belong to the previous translator: drop them, and
    // the superblocks compiled from them (a new translator may reuse
    // epoch numbers, so the entry-time epoch compare alone can't tell
    // its flows from the old ones).
    flowCache_.clear();
    fastpath_->clear();
}

void
Simulation::setFlowCacheEnabled(bool on)
{
    flowCacheEnabled_ = on;
    if (!on) {
        flowCache_.clear();
        // Superblocks point into the flow cache's entries; with the
        // flows destroyed under an unchanged epoch they must go too.
        fastpath_->clear();
    }
}

void
Simulation::setSuperblockEnabled(bool on)
{
    superblockEnabled_ = on;
    if (!on)
        fastpath_->clear();
}

void
Simulation::setSuperblockThreshold(std::uint32_t threshold)
{
    fastpath_->setThreshold(threshold);
}

/**
 * Translate @p op, serving the flow from the predecoded-flow cache
 * when the translator vouches that memoization is faithful. Returns a
 * reference valid until the next step (cached entries are stable
 * across steps; uncached flows live in scratchFlow_).
 */
const UopFlow &
Simulation::translatedFlow(const MacroOp &op)
{
    // Cache slot = the op's position in the program's instruction
    // stream (step() always fetches through Program::at, which hands
    // out pointers into code()).
    const std::size_t slot =
        static_cast<std::size_t>(&op - prog_.code().data());
    if (flowCacheEnabled_ && slot < flowCache_.slots() &&
        translator_->translationStable(op)) {
        const std::uint64_t epoch = translator_->translationEpoch();
        const UopFlow *cached =
            profiled(HostPhase::FlowCache, [&]() -> const UopFlow * {
                const FlowCache::Entry *hit = flowCache_.lookup(
                    slot, epoch, translator_->stableContext(op));
                if (!hit)
                    return nullptr;
                translator_->noteCachedTranslation(op, hit->flow,
                                                   hit->ctx);
                curCtx_ = hit->ctx;
                return &hit->flow;
            });
        if (cached)
            return *cached;
        return profiled(HostPhase::Translate, [&]() -> const UopFlow & {
            UopFlow flow = translator_->translate(op);
            applyFusionConfig(flow, params_.frontend);
            applySpTracking(flow, params_.frontend);
            curCtx_ = translator_->contextId();
            if (flow.cacheable)
                return flowCache_.insert(slot, epoch, curCtx_,
                                         std::move(flow));
            scratchFlow_ = std::move(flow);
            return scratchFlow_;
        });
    }
    ++flowCache_.bypasses;
    return profiled(HostPhase::Translate, [&]() -> const UopFlow & {
        scratchFlow_ = translator_->translate(op);
        applyFusionConfig(scratchFlow_, params_.frontend);
        applySpTracking(scratchFlow_, params_.frontend);
        curCtx_ = translator_->contextId();
        return scratchFlow_;
    });
}

void
Simulation::setCsd(ContextSensitiveDecoder *csd)
{
    csd_ = csd;
    setTranslator(csd);
}

void
Simulation::setTaintTracker(TaintTracker *taint)
{
    taint_ = taint;
}

void
Simulation::setPowerController(PowerGateController *power)
{
    power_ = power;
}

std::uint64_t
Simulation::uopsExecuted() const
{
    return backend_->uopsExecuted();
}

bool
Simulation::step()
{
    if (state_.halted)
        return false;
    if (instructions_.value() >= params_.maxInstructions)
        return false;

    const MacroOp *op = prog_.at(state_.pc);
    if (!op)
        csd_fatal("Simulation: no instruction at pc 0x", std::hex,
                  state_.pc);

    // Route this thread's trace/stats/log fast paths through our
    // context (cheap TLS compare; only rebinds when a worker pool
    // moved us to another thread or ran a different simulation here).
    if (ObservabilityContext::currentOrNull() != obs_)
        obs_->bindToThread();

    // Keep clock-less components' trace events roughly on the timeline.
    if (traceAnyEnabled())
        obs_->tracer().setTimeHint(cycles_);

    // Power-gating decision (unit-criticality predictor input).
    if (power_) {
        const unsigned vec_uops =
            devectorizable(op->opcode) ? 1u : 0u;
        const auto directive = power_->onMacroOp(*op, cycles_, vec_uops);
        if (csd_)
            csd_->setDevectorize(directive.devectorize);
        if (directive.stallCycles > 0) {
            // Conventional PG: pipeline stalls for the demand wake.
            cycles_ += directive.stallCycles;
            vpuStalls_ += directive.stallCycles;
            frontend_->redirect(cycles_);
            if (cpiStack_)
                cpiStack_->accountExternal(cycles_, CpiBucket::VpuWake);
        }
    }

    // Decode (context-sensitive translation), with decode-time passes,
    // memoized per PC when architecturally faithful (translatedFlow).
    state_.cycleHint = cycles_;
    translator_->tick(cycles_);
    const UopFlow &flow = translatedFlow(*op);

    // Functional execution with per-uop annotations (into a reused
    // buffer: the DynUop vector's heap spill survives across steps).
    profiled(HostPhase::Execute,
             [&] { executor_.executeInto(*op, flow, scratchResult_); });
    const FlowResult &result = scratchResult_;

    // DIFT propagation (program order, as the hardware would).
    if (taint_)
        taint_->propagate(flow, result);

    if (params_.mode == SimMode::Detailed)
        profiled(HostPhase::Pipeline,
                 [&] { stepDetailed(*op, flow, result); });
    else
        profiled(HostPhase::Memory,
                 [&] { stepCacheOnly(*op, flow, result); });

    ++instructions_;
    uopsSimulated_ += result.dynUops.size();
    if (statsDetailEnabled())
        flowLen_.sample(static_cast<double>(result.dynUops.size()));
    prevMacro_ = op;  // points into prog_.code(); stable for our lifetime

    if (sampleInterval_ != 0 && cycles_ >= nextSampleAt_)
        maybeSample();

    return !state_.halted;
}

void
Simulation::sampleEvery(Tick interval, std::vector<std::string> stat_paths)
{
    if (interval == 0)
        csd_fatal("Simulation::sampleEvery: interval must be positive");
    sampleInterval_ = interval;
    samplePaths_ = stat_paths.empty()
        ? std::vector<std::string>{"instructions", "ipc"}
        : std::move(stat_paths);
    // Validate eagerly so typos fail at configuration time.
    for (const std::string &path : samplePaths_)
        stats_.valueOf(path);
    nextSampleAt_ = cycles_ + interval;
}

void
Simulation::maybeSample()
{
    HostProfiler::Scope prof(obs_->profiler(), HostPhase::StatOverhead);
    IntervalSample sample;
    sample.cycle = cycles_;
    sample.values.reserve(samplePaths_.size());
    for (const std::string &path : samplePaths_)
        sample.values.push_back(stats_.valueOf(path));
    samples_.push_back(std::move(sample));
    while (nextSampleAt_ <= cycles_)
        nextSampleAt_ += sampleInterval_;
}

void
Simulation::writeSamplesCsv(std::ostream &os) const
{
    os << "cycle";
    for (const std::string &path : samplePaths_)
        os << "," << path;
    os << "\n";
    for (const IntervalSample &sample : samples_) {
        os << sample.cycle;
        for (double v : sample.values)
            os << "," << v;
        os << "\n";
    }
}

void
Simulation::stepDetailed(const MacroOp &op, const UopFlow &flow,
                         const FlowResult &result)
{
    // Macro-fusion: an eligible jcc rides its predecessor's slot.
    const bool macro_fused = params_.frontend.macroFusion &&
                             prevMacro_ != nullptr &&
                             macroFusesWithPrev(*prevMacro_, op) &&
                             flow.uops.size() == 1 && !flow.loop;
    if (macro_fused)
        ++macroFusedPairs_;

    const Tick fetch_cycle = frontend_->cycle();
    frontend_->beginMacroOp(op, flow, curCtx_, result.tookBranch,
                            result.nextPc);

    Tick deliver = lastSlotCycle_;
    Tick branch_complete = 0;

    for (const DynUop &dyn : result.dynUops) {
        const Uop &uop = *dyn.uop;
        const bool takes_slot = !uop.eliminated && !uop.fusedFollower &&
                                !(macro_fused && uop.isBranch());
        if (takes_slot) {
            deliver = frontend_->nextSlotCycle();
            // IDQ backpressure: this slot's queue entry must have been
            // freed by an older dispatch.
            if (idqCount_ >= idqRing_.size())
                deliver = std::max(deliver, idqRing_[idqIdx_]);
            ++slotsDelivered_;
            // Front-end dynamic energy by delivery source.
            frontendDynamic_ +=
                frontend_->source() == DeliverySource::Legacy ||
                        frontend_->source() == DeliverySource::Msrom
                    ? energyModel_.params().legacyDecodeEnergy
                    : energyModel_.params().uopCacheStreamEnergy;
        }
        lastSlotCycle_ = deliver;

        const auto timing = backend_->process(uop, dyn, deliver);

        if (cpiStack_ || lifecycle_) {
            const bool devect_ctx = curCtx_ == ctxDevect;
            const bool tainted = taint_ &&
                ((uop.dst.valid() && taint_->regTainted(uop.dst)) ||
                 (uop.src1.valid() && taint_->regTainted(uop.src1)) ||
                 (uop.src2.valid() && taint_->regTainted(uop.src2)) ||
                 (uop.src3.valid() && taint_->regTainted(uop.src3)));
            if (cpiStack_) {
                CpiStack::UopContext ctx;
                ctx.pc = op.pc;
                ctx.decoy = uop.decoy;
                ctx.devectExpansion =
                    devect_ctx && devectExpansionUop(uop);
                ctx.tainted = tainted;
                const std::uint64_t l1i = frontend_->fetchStallCycles();
                const std::uint64_t bw = frontend_->decodeBwCycles();
                ctx.feL1i = l1i - feL1iSeen_;
                ctx.feDecode = bw - feDecodeSeen_;
                feL1iSeen_ = l1i;
                feDecodeSeen_ = bw;
                cpiStack_->accountUop(timing, ctx);
            }
            if (lifecycle_) {
                LifecycleRecord record;
                record.uop = uop;
                record.fetch = fetch_cycle;
                record.decode = deliver;
                record.dispatch = timing.dispatch;
                record.issue = timing.issue;
                record.complete = timing.complete;
                record.commit = timing.commit;
                record.source = frontend_->source();
                record.devectCtx = devect_ctx;
                record.tainted = tainted;
                lifecycle_->record(std::move(record));
            }
        }

        // rdtsc's architectural value is its execution timestamp.
        if (uop.op == MicroOpcode::ReadCycles && uop.dst.valid())
            state_.writeInt(uop.dst, timing.issue);

        if (takes_slot) {
            idqRing_[idqIdx_] = timing.dispatch;
            if (++idqIdx_ == idqRing_.size())
                idqIdx_ = 0;
            if (idqCount_ < idqRing_.size())
                ++idqCount_;
        }

        if (!uop.eliminated) {
            const double energy = energyModel_.uopEnergy(uop);
            if (onVpu(uop))
                vpuDynamic_ += energy;
            else
                coreDynamic_ += energy;
            if (uop.decoy)
                ++decoyUopsExecuted_;
            if (curCtx_ == ctxDevect)
                ++devectUopsExecuted_;
        }
        if (uop.isBranch())
            branch_complete = timing.complete;
    }

    // Control flow: predict, train, and redirect the front end.
    if (isBranch(op.opcode)) {
        const auto pred = bpred_->predict(op);
        const bool correct = bpred_->update(op, pred, result.tookBranch,
                                            result.nextPc);
        if (!correct) {
            frontend_->redirect(branch_complete +
                                params_.backend.mispredictResteer);
        } else if (result.tookBranch) {
            frontend_->redirect(frontend_->cycle() +
                                params_.backend.takenBranchBubble);
        }
    }

    cycles_ = std::max(cycles_, backend_->lastCommit());
}

void
Simulation::stepCacheOnly(const MacroOp &op, const UopFlow &flow,
                          const FlowResult &result)
{
    // Instruction fetch: touch the I-cache once per block.
    const Addr first = blockAlign(op.pc);
    const Addr last = blockAlign(op.pc + op.length - 1);
    Cycles latency = 0;
    for (Addr block = first; block <= last; block += cacheBlockSize) {
        if (block != lastFetchBlock_) {
            latency += mem_->fetchInstr(block).latency;
            lastFetchBlock_ = block;
        }
    }

    for (const DynUop &dyn : result.dynUops) {
        const Uop &uop = *dyn.uop;
        if (uop.eliminated)
            continue;
        ++slotsDelivered_;
        if (uop.decoy)
            ++decoyUopsExecuted_;
        if (uop.isLoad()) {
            latency += (uop.instrFetch ? mem_->fetchInstr(dyn.effAddr)
                                       : mem_->readData(dyn.effAddr))
                           .latency;
        } else if (uop.isStore()) {
            mem_->writeData(dyn.effAddr);
        } else if (uop.op == MicroOpcode::CacheFlush) {
            mem_->flush(dyn.effAddr);
            latency += 40;
        }
        const double energy = energyModel_.uopEnergy(uop);
        if (onVpu(uop))
            vpuDynamic_ += energy;
        else
            coreDynamic_ += energy;
    }

    // Pseudo-cycles: one per uop plus a fraction of memory latency
    // (enough to drive the watchdog at a realistic rate).
    cycles_ += deliveredUops(flow) + latency / 4;
    (void)result;
}

std::uint64_t
Simulation::run(std::uint64_t max_instructions)
{
    std::uint64_t executed = 0;

    // Superblock fast path: compiled straight-line execution between
    // region heads (sim/fastpath.hh). Tracing stays on the interpreter
    // so per-step trace output is unchanged; a power controller needs
    // its per-macro hook; detailed mode has its own pipeline loop.
    if (params_.mode == SimMode::CacheOnly && superblockEnabled_ &&
        flowCacheEnabled_ && !power_ && !traceAnyEnabled()) {
        if (ObservabilityContext::currentOrNull() != obs_)
            obs_->bindToThread();
        // Region heads are where superblocks anchor: program entry and
        // every branch target. Consulting only there keeps the heat
        // counters (and block count) bounded by the branch structure
        // rather than by static code size.
        bool at_head = true;
        for (;;) {
            if (at_head && executed < max_instructions) {
                executed += profiled(HostPhase::Superblock, [&] {
                    return fastpath_->run(max_instructions - executed);
                });
            }
            if (executed >= max_instructions || !step())
                return executed;
            ++executed;
            at_head = scratchResult_.tookBranch;
        }
    }

    while (executed < max_instructions && step())
        ++executed;
    return executed;
}

void
Simulation::runToHalt()
{
    run(std::numeric_limits<std::uint64_t>::max());
}

void
Simulation::restart()
{
    state_.pc = prog_.entry();
    state_.halted = false;
    prevMacro_ = nullptr;
}

EnergyBreakdown
Simulation::energy() const
{
    const EnergyParams &ep = energyModel_.params();
    EnergyBreakdown breakdown;
    breakdown.coreDynamic = coreDynamic_;
    breakdown.vpuDynamic = vpuDynamic_;
    breakdown.frontendDynamic = frontendDynamic_;
    breakdown.coreStatic = ep.coreLeakage * static_cast<double>(cycles_);

    if (power_) {
        // finalize() must have been called by the harness.
        const double on = static_cast<double>(power_->onCycles());
        const double waking = static_cast<double>(power_->wakingCycles());
        const double gated = static_cast<double>(power_->gatedCycles());
        breakdown.vpuStatic = ep.vpuLeakage * (on + waking);
        breakdown.headerStatic = ep.headerLeakage * gated;
        breakdown.gatingOverhead =
            energyModel_.gatingOverhead() *
            static_cast<double>(power_->gateEvents());
    } else {
        breakdown.vpuStatic =
            ep.vpuLeakage * static_cast<double>(cycles_);
    }
    return breakdown;
}

double
Simulation::ipc() const
{
    return cycles_ == 0
        ? 0.0
        : static_cast<double>(instructions_.value()) / cycles_;
}

obs::Manifest
Simulation::buildManifest() const
{
    // Hash everything that defines the *simulated* run — program shape
    // and architectural parameters — and nothing host-side (flow cache,
    // jobs, output paths), so runs that should be comparable hash
    // equal regardless of how they were executed.
    obs::ConfigHasher h;
    h.add("mode", params_.mode == SimMode::Detailed ? "detailed"
                                                    : "cache_only");
    h.add("max_instructions", params_.maxInstructions);
    h.add("program.instructions",
          static_cast<std::uint64_t>(prog_.code().size()));
    h.add("program.entry", static_cast<std::uint64_t>(prog_.entry()));

    const FrontEndParams &fe = params_.frontend;
    h.add("fe.fetch_bytes", fe.fetchBytesPerCycle);
    h.add("fe.macro_queue", fe.macroQueueEntries);
    h.add("fe.decode_width", fe.decodeWidth);
    h.add("fe.simple_decoders", fe.simpleDecoders);
    h.add("fe.complex_max_uops", fe.complexDecoderMaxUops);
    h.add("fe.msrom_width", fe.msromWidth);
    h.add("fe.uc_enabled", static_cast<std::uint64_t>(fe.uopCacheEnabled));
    h.add("fe.uc_sets", fe.uopCacheSets);
    h.add("fe.uc_ways", fe.uopCacheWays);
    h.add("fe.uc_slots", fe.uopCacheSlotsPerWay);
    h.add("fe.uc_window", fe.uopCacheWindowBytes);
    h.add("fe.uc_max_ways", fe.uopCacheMaxWaysPerWindow);
    h.add("fe.uc_stream", fe.uopCacheStreamWidth);
    h.add("fe.uc_ctx_bits",
          static_cast<std::uint64_t>(fe.uopCacheContextBits));
    h.add("fe.uc_switch_penalty", fe.uopCacheSwitchPenalty);
    h.add("fe.lsd_enabled", static_cast<std::uint64_t>(fe.lsdEnabled));
    h.add("fe.lsd_slots", fe.lsdMaxSlots);
    h.add("fe.lsd_stream", fe.lsdStreamWidth);
    h.add("fe.macro_fusion", static_cast<std::uint64_t>(fe.macroFusion));
    h.add("fe.micro_fusion", static_cast<std::uint64_t>(fe.microFusion));
    h.add("fe.sp_tracker", static_cast<std::uint64_t>(fe.spTracker));

    const MemHierarchyParams &mem = params_.mem;
    const auto cache = [&h](const char *level, const CacheParams &c) {
        h.add(std::string(level) + ".size", c.sizeBytes);
        h.add(std::string(level) + ".assoc", c.assoc);
        h.add(std::string(level) + ".latency", c.hitLatency);
    };
    cache("mem.l1i", mem.l1i);
    cache("mem.l1d", mem.l1d);
    cache("mem.l2", mem.l2);
    cache("mem.llc", mem.llc);
    h.add("mem.dram_latency", mem.dramLatency);
    h.add("mem.extra_l2_latency", mem.extraL2Latency);

    const BackEndParams &be = params_.backend;
    h.add("be.rob", be.robEntries);
    h.add("be.commit_width", be.commitWidth);
    h.add("be.dispatch_latency", be.dispatchLatency);
    h.add("be.mispredict_resteer", be.mispredictResteer);
    h.add("be.taken_bubble", be.takenBranchBubble);

    const BranchPredParams &bp = params_.bpred;
    h.add("bp.gshare", bp.gshareEntries);
    h.add("bp.history", bp.historyBits);
    h.add("bp.btb", bp.btbEntries);
    h.add("bp.ras", bp.rasEntries);

    const EnergyParams &en = params_.energy;
    h.add("en.int_alu", en.intAluEnergy);
    h.add("en.vec_alu", en.vecAluEnergy);
    h.add("en.core_leakage", en.coreLeakage);
    h.add("en.vpu_leakage", en.vpuLeakage);
    h.add("en.header_ratio", en.headerAreaRatio);

    obs::Manifest manifest;
    manifest.configHash = h.hex();
    // No context id here: it depends on construction order, and the
    // manifest promises "deterministic except phases" for a fixed
    // build + host + configuration.
    manifest.note("translator_epoch", translator_->translationEpoch());
    return manifest;
}

void
Simulation::dumpStatsJson(std::ostream &os) const
{
    const obs::Manifest manifest = buildManifest();
    stats_.dumpJson(os, 0,
                    [&](std::ostream &out, const std::string &indent) {
                        manifest.write(out, indent, &obs_->profiler());
                    });
}

} // namespace csd

/**
 * @file
 * Superblock fast path: threaded-code execution tier for cache-only
 * simulation.
 *
 * The interpreter (Simulation::step) pays per macro-op for work that is
 * invariant across the billions of dynamic instances a cache-only
 * attack harness executes: translator stability checks, flow-cache
 * probes, executor dispatch, and per-uop accounting decisions. This
 * tier detects hot region heads via execution counters hung off the
 * flow-cache slots, compiles straight-line runs of cached flows into
 * superblocks (decode/superblock.hh), and executes them as flat
 * threaded-code streams — computed-goto dispatch where the compiler
 * supports it, a dense switch otherwise.
 *
 * Exit protocol: a superblock is entered only while the translator
 * epoch it was built under is current, and execution leaves it on the
 * first taken branch, epoch bump (watchdog retrigger, MSR write),
 * stability loss, or budget exhaustion — falling back to the
 * interpreter mid-region with all architectural and accounting state
 * exactly as the interpreter would have left it. Tier on or off,
 * stats dumps and sidecars are bit-identical
 * (tests/sim/test_superblock.cc).
 *
 * All counters here are host-side plain integers outside the stat
 * tree, like the flow cache's, so they never perturb simulated output.
 */

#ifndef CSD_SIM_FASTPATH_HH
#define CSD_SIM_FASTPATH_HH

#include <cstdint>

#include "cpu/executor.hh"
#include "decode/superblock.hh"

namespace csd
{

class ContextSensitiveDecoder;
class Simulation;

/**
 * Exit-protocol metadata: what the dispatch loop guarantees when it
 * leaves a superblock for a given reason. This is declarative, not
 * derived — it states the contract execBlock() implements and any
 * future execution tier (the native x86-64 emitter of ROADMAP item 1)
 * must implement too. The static tier-equivalence prover
 * (verify/tier_equiv.hh) consumes it through SuperblockView and
 * rejects any exit reason that can fire mid-block without flushing a
 * clean whole-macro prefix in interpreter order (tier.partial-flush).
 */
struct SbExitMeta
{
    /** May fire with macros of the block still unexecuted. */
    bool midBlock = false;
    /**
     * On exit, a whole-macro prefix of the block has retired with all
     * architectural state and accounting deltas exactly as the
     * interpreter would have left them (no partially applied macro).
     */
    bool flushesPrefix = false;
    /** The interpreter must take over at state.pc (no block chaining). */
    bool resumesInterpreter = false;
};

/** The contract table, exhaustive over SbExit (compile-break on new
 *  enumerators via the static_assert in sbExitName's definition). */
constexpr SbExitMeta
sbExitMeta(SbExit exit)
{
    switch (exit) {
      case SbExit::End:
        return {/*midBlock=*/false, /*flushesPrefix=*/true,
                /*resumesInterpreter=*/false};
      case SbExit::Branch:
        return {/*midBlock=*/true, /*flushesPrefix=*/true,
                /*resumesInterpreter=*/false};
      case SbExit::EpochBump:
      case SbExit::Unstable:
      case SbExit::Budget:
        return {/*midBlock=*/true, /*flushesPrefix=*/true,
                /*resumesInterpreter=*/true};
      case SbExit::NumExits:
        break;
    }
    return {};
}

/** Superblock build + threaded-code execution engine (one per sim). */
class FastPath
{
  public:
    /** Host-side accounting (never part of the simulated stat tree). */
    struct Counters
    {
        std::uint64_t built = 0;        //!< superblocks compiled
        std::uint64_t buildAborts = 0;  //!< builds under minMacros
        std::uint64_t invalidated = 0;  //!< blocks dropped (stale epoch)
        std::uint64_t entries = 0;      //!< block executions started
        std::uint64_t blockMacros = 0;  //!< static macro-ops compiled
        std::uint64_t blockUops = 0;    //!< static uops compiled
        std::uint64_t uopsRetired = 0;  //!< dynamic uops retired here
        std::uint64_t exits[numSbExits] = {};  //!< by SbExit reason
    };

    explicit FastPath(Simulation &sim) : sim_(sim) {}

    /** Size the block cache for a program; drops compiled blocks. */
    void reset(std::size_t slots) { cache_.reset(slots); }

    /**
     * Drop every compiled block. Required whenever the flow cache is
     * cleared: superblocks hold pointers into its entries, and only the
     * epoch compare keeps a block from being entered — a cleared flow
     * cache under an unchanged epoch would otherwise leave enterable
     * blocks referencing destroyed flows.
     */
    void clear() { cache_.clear(); }

    /** Region-entry count at which a head is compiled (>= 1). */
    void setThreshold(std::uint32_t threshold) { threshold_ = threshold; }
    std::uint32_t threshold() const { return threshold_; }

    const Counters &counters() const { return counters_; }
    const SuperblockCache &cache() const { return cache_; }

    /**
     * Execute superblocks starting at the current PC until a region
     * exit that the interpreter must handle, or until @p budget
     * instructions committed. Returns the number committed. The caller
     * (Simulation::run) guarantees cache-only mode with the flow cache
     * enabled and no power controller or tracing armed.
     */
    std::uint64_t run(std::uint64_t budget);

  private:
    // Templated on the concrete translator type: NativeTranslator's
    // protocol hooks fold to nothing, the CSD's inline bodies
    // (csd/csd.hh) are absorbed into the macro loop, and any other
    // Translator subclass falls back to virtual dispatch.
    template <class Tr, bool Taint>
    std::uint64_t runImpl(Tr &tr, std::uint64_t budget);

    template <class Tr, bool Taint>
    SbExit execBlock(Tr &tr, const Superblock &block, std::uint64_t budget,
                     std::uint64_t &executed);

    Simulation &sim_;
    SuperblockCache cache_;
    SuperblockLimits limits_;
    std::uint32_t threshold_ = 16;
    Counters counters_;
    FlowResult taintScratch_;  //!< reused DynUop buffer for DIFT replay

    // Memoized translator-kind resolution (run() is hot; see run()).
    Translator *resolvedFor_ = nullptr;
    ContextSensitiveDecoder *resolvedCsd_ = nullptr;
};

} // namespace csd

#endif // CSD_SIM_FASTPATH_HH

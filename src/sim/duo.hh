/**
 * @file
 * Two co-located hardware contexts sharing one cache hierarchy.
 *
 * The paper's threat model (§IV-A) has a spy running side-by-side with
 * the victim, observing it purely through shared micro-architectural
 * state. DuoSimulation runs two programs — e.g. a victim cryptosystem
 * and a mini-ISA spy using `clflush`/`rdtsc` — over one MemHierarchy,
 * interleaving execution at a configurable quantum (SMT-style
 * fine-grained sharing at small quanta, OS time-slicing at large ones).
 */

#ifndef CSD_SIM_DUO_HH
#define CSD_SIM_DUO_HH

#include "sim/simulation.hh"

namespace csd
{

/** Two simulations over a shared memory hierarchy. */
class DuoSimulation
{
  public:
    /**
     * @param a first program (by convention, the victim)
     * @param b second program (by convention, the spy)
     */
    DuoSimulation(const Program &a, const Program &b,
                  const SimParams &params = {});

    Simulation &first() { return *a_; }
    Simulation &second() { return *b_; }
    MemHierarchy &mem() { return mem_; }

    /**
     * The observability context shared by both hardware contexts:
     * victim and spy events interleave on one trace timeline, the way
     * they share one core's observability hardware. A caller-supplied
     * SimParams::obs takes precedence and is used by both halves.
     */
    ObservabilityContext &obs() { return a_->obs(); }

    /**
     * Interleave execution: alternately run each context for
     * @p quantum instructions until both halt or @p max_total
     * instructions have executed across both. A halted context simply
     * yields its quanta. Returns total instructions executed.
     */
    std::uint64_t run(std::uint64_t quantum, std::uint64_t max_total);

    bool bothHalted() const;

  private:
    MemHierarchy mem_;
    std::unique_ptr<ObservabilityContext> ownedObs_;  //!< null if shared
    std::unique_ptr<Simulation> a_;
    std::unique_ptr<Simulation> b_;
};

} // namespace csd

#endif // CSD_SIM_DUO_HH

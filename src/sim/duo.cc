#include "sim/duo.hh"

namespace csd
{

namespace
{

/** Both halves record into one context (see DuoSimulation::obs()). */
SimParams
withSharedObs(const SimParams &params, ObservabilityContext *owned)
{
    SimParams shared = params;
    if (!shared.obs)
        shared.obs = owned;
    return shared;
}

} // namespace

DuoSimulation::DuoSimulation(const Program &a, const Program &b,
                             const SimParams &params)
    : mem_(params.mem),
      ownedObs_(params.obs ? nullptr
                           : std::make_unique<ObservabilityContext>()),
      a_(std::make_unique<Simulation>(a,
                                      withSharedObs(params, ownedObs_.get()),
                                      &mem_)),
      b_(std::make_unique<Simulation>(b,
                                      withSharedObs(params, ownedObs_.get()),
                                      &mem_))
{
}

bool
DuoSimulation::bothHalted() const
{
    return a_->halted() && b_->halted();
}

std::uint64_t
DuoSimulation::run(std::uint64_t quantum, std::uint64_t max_total)
{
    std::uint64_t total = 0;
    while (!bothHalted() && total < max_total) {
        std::uint64_t progress = 0;
        if (!a_->halted())
            progress += a_->run(quantum);
        if (!b_->halted())
            progress += b_->run(quantum);
        if (progress == 0)
            break;  // both wedged on instruction limits
        total += progress;
    }
    return total;
}

} // namespace csd

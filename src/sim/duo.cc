#include "sim/duo.hh"

namespace csd
{

DuoSimulation::DuoSimulation(const Program &a, const Program &b,
                             const SimParams &params)
    : mem_(params.mem),
      a_(std::make_unique<Simulation>(a, params, &mem_)),
      b_(std::make_unique<Simulation>(b, params, &mem_))
{
}

bool
DuoSimulation::bothHalted() const
{
    return a_->halted() && b_->halted();
}

std::uint64_t
DuoSimulation::run(std::uint64_t quantum, std::uint64_t max_total)
{
    std::uint64_t total = 0;
    while (!bothHalted() && total < max_total) {
        std::uint64_t progress = 0;
        if (!a_->halted())
            progress += a_->run(quantum);
        if (!b_->halted())
            progress += b_->run(quantum);
        if (progress == 0)
            break;  // both wedged on instruction limits
        total += progress;
    }
    return total;
}

} // namespace csd

/**
 * @file
 * Internal micro-op (uop) definitions.
 *
 * Micro-ops are the RISC-like internal operations the decoders emit.
 * They address architectural registers plus a small set of
 * decoder-temporary registers (t0-t7 integer, vt0-vt3 vector) that are
 * invisible to software — decoy micro-ops and devectorized flows live
 * entirely in this space, which is what makes them unreadable from both
 * user and kernel mode (paper §I).
 */

#ifndef CSD_UOP_UOP_HH
#define CSD_UOP_UOP_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/macroop.hh"
#include "isa/registers.hh"

namespace csd
{

/** Register classes addressable by micro-ops. */
enum class RegClass : std::uint8_t
{
    Int,    //!< GPRs 0-15, decoder temporaries 16-23
    Vec,    //!< XMMs 0-15, decoder temporaries 16-19
    Flags,  //!< the single RFLAGS register
    None,
};

/** Number of integer decoder-temporary registers. */
constexpr unsigned numIntTemps = 8;
/** Number of vector decoder-temporary registers. */
constexpr unsigned numVecTemps = 4;

constexpr unsigned numIntUopRegs = numGprs + numIntTemps;
constexpr unsigned numVecUopRegs = numXmms + numVecTemps;

/** A micro-op register identifier. */
struct RegId
{
    RegClass cls = RegClass::None;
    std::uint8_t idx = 0;

    constexpr RegId() = default;
    constexpr RegId(RegClass c, std::uint8_t i) : cls(c), idx(i) {}

    constexpr bool valid() const { return cls != RegClass::None; }
    constexpr bool isIntTemp() const
    {
        return cls == RegClass::Int && idx >= numGprs;
    }
    constexpr bool isVecTemp() const
    {
        return cls == RegClass::Vec && idx >= numXmms;
    }

    /**
     * Flat index across all register classes, used for dependence
     * tracking in the issue logic. Layout: [int | vec | flags].
     */
    constexpr unsigned
    flatIndex() const
    {
        switch (cls) {
          case RegClass::Int:   return idx;
          case RegClass::Vec:   return numIntUopRegs + idx;
          case RegClass::Flags: return numIntUopRegs + numVecUopRegs;
          default:              return 0;
        }
    }

    constexpr bool
    operator==(const RegId &other) const
    {
        return cls == other.cls && idx == other.idx;
    }
};

/** Total number of flat register slots (see RegId::flatIndex). */
constexpr unsigned numFlatRegs = numIntUopRegs + numVecUopRegs + 1;

/** Construct a RegId for an architectural GPR. */
constexpr RegId
intReg(Gpr reg)
{
    return RegId(RegClass::Int, static_cast<std::uint8_t>(reg));
}

/** Construct a RegId for an integer decoder temporary t<n>. */
constexpr RegId
intTemp(unsigned n)
{
    return RegId(RegClass::Int, static_cast<std::uint8_t>(numGprs + n));
}

/** Construct a RegId for an architectural XMM register. */
constexpr RegId
vecReg(Xmm reg)
{
    return RegId(RegClass::Vec, static_cast<std::uint8_t>(reg));
}

/** Construct a RegId for a vector decoder temporary vt<n>. */
constexpr RegId
vecTemp(unsigned n)
{
    return RegId(RegClass::Vec, static_cast<std::uint8_t>(numXmms + n));
}

/** The flags register. */
constexpr RegId
flagsReg()
{
    return RegId(RegClass::Flags, 0);
}

/** Micro-op opcodes. */
enum class MicroOpcode : std::uint8_t
{
    // Integer ALU (dst <- src1 OP src2/imm)
    Add, Adc, Sub, Sbb, And, Or, Xor,
    Shl, Shr, Sar, Rol, Ror,
    Mul,
    Not, Neg,
    Mov,        //!< dst <- src1
    LoadImm,    //!< dst <- imm
    Lea,        //!< dst <- agen(src1, src2, scale, disp)
    Cmp,        //!< flags <- src1 - src2/imm (no register result)
    Test,       //!< flags <- src1 & src2/imm

    // Memory
    Load,       //!< dst <- mem[agen], zero-extended to 64 bits
    Store,      //!< mem[agen] <- src3
    StoreImm,   //!< mem[agen] <- imm
    LoadVec,    //!< vdst <- mem[agen] (16 bytes)
    StoreVec,   //!< mem[agen] <- vsrc3 (16 bytes)

    // Control
    Br,         //!< (conditional) branch to Uop::target
    BrInd,      //!< branch to the value of src1

    // Vector integer (lane width in Uop::lane)
    VAdd, VSub, VAnd, VOr, VXor,
    VMulLo16,   //!< 16-bit lane multiply, low half
    VShlI, VShrI,
    VMov,

    // Vector floating point
    FAddPs, FMulPs, FSubPs,
    FAddPd, FMulPd, FSubPd,
    FDivPs, FSqrtPs,

    // Scalar helpers used by devectorized flows: operate on one 64-bit
    // lane of a vector register with a scalar ALU.
    VExtract,   //!< dst(int) <- vector src1's 64-bit lane imm
    VInsert,    //!< vdst's 64-bit lane imm <- int src1

    // Scalar floating point (the x87/scalar FP unit stays powered when
    // the VPU is gated); operands are bit patterns in integer registers.
    FAddS, FSubS, FMulS, FDivS, FSqrtS,   //!< float32 in low 32 bits
    FAddSd, FSubSd, FMulSd,               //!< float64

    CacheFlush, //!< evict [agen] from every cache level
    ReadCycles, //!< dst <- current cycle count

    Nop,
    Halt,

    NumOpcodes,
};

/** Functional-unit classes (issue-port binding). */
enum class FuClass : std::uint8_t
{
    IntAlu,
    IntMul,
    Branch,
    MemLoad,
    MemStore,
    VecAlu,     //!< executes on the VPU
    VecMul,     //!< executes on the VPU
    VecFpDiv,   //!< executes on the VPU (unpipelined)
    FpScalar,   //!< scalar FP unit (stays on when the VPU is gated)
    None,       //!< nop/halt
};

/** One micro-op. */
struct Uop
{
    MicroOpcode op = MicroOpcode::Nop;

    RegId dst;
    RegId src1;         //!< also the agen base for memory ops
    RegId src2;         //!< also the agen index for memory ops
    RegId src3;         //!< store-data register

    std::int64_t imm = 0;
    std::int64_t disp = 0;
    std::uint8_t scale = 1;
    std::uint8_t memSize = 8;   //!< access size in bytes

    Cond cond = Cond::Always;
    Addr target = invalidAddr;  //!< macro-level branch target

    std::uint8_t lane = 4;      //!< vector lane width in bytes
    OpWidth width = OpWidth::W64;

    bool writesFlags = false;
    bool readsFlags = false;

    // --- metadata ------------------------------------------------------
    bool decoy = false;         //!< injected by stealth-mode translation
    bool instrFetch = false;    //!< decoy load targets the I-cache
    bool fusedLeader = false;   //!< first uop of a fused pair
    bool fusedFollower = false; //!< second uop of a fused pair
    bool immData = false;       //!< ALU second operand is imm, not src2
    bool eliminated = false;    //!< removed at decode (SP tracker)

    Addr macroPc = invalidAddr; //!< PC of the parent macro-op
    std::uint8_t uopIdx = 0;    //!< position within the parent flow

    bool isLoad() const
    {
        return op == MicroOpcode::Load || op == MicroOpcode::LoadVec;
    }
    bool isStore() const
    {
        return op == MicroOpcode::Store || op == MicroOpcode::StoreImm ||
               op == MicroOpcode::StoreVec;
    }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const
    {
        return op == MicroOpcode::Br || op == MicroOpcode::BrInd;
    }
};

namespace detail
{

// fuClass/fuLatency run once per simulated uop; precomputing them
// into per-opcode tables keeps the hot loop free of switch dispatch.
constexpr std::size_t numMicroOpcodes =
    static_cast<std::size_t>(MicroOpcode::NumOpcodes);

constexpr FuClass
fuClassOf(MicroOpcode op)
{
    switch (op) {
      case MicroOpcode::Add: case MicroOpcode::Adc:
      case MicroOpcode::Sub: case MicroOpcode::Sbb:
      case MicroOpcode::And: case MicroOpcode::Or: case MicroOpcode::Xor:
      case MicroOpcode::Shl: case MicroOpcode::Shr: case MicroOpcode::Sar:
      case MicroOpcode::Rol: case MicroOpcode::Ror:
      case MicroOpcode::Not: case MicroOpcode::Neg:
      case MicroOpcode::Mov: case MicroOpcode::LoadImm:
      case MicroOpcode::Lea:
      case MicroOpcode::Cmp: case MicroOpcode::Test:
      case MicroOpcode::VExtract: case MicroOpcode::VInsert:
      case MicroOpcode::ReadCycles:
        return FuClass::IntAlu;
      case MicroOpcode::Mul:
        return FuClass::IntMul;
      case MicroOpcode::Load: case MicroOpcode::LoadVec:
        return FuClass::MemLoad;
      case MicroOpcode::Store: case MicroOpcode::StoreImm:
      case MicroOpcode::StoreVec:
      case MicroOpcode::CacheFlush:
        return FuClass::MemStore;
      case MicroOpcode::Br: case MicroOpcode::BrInd:
        return FuClass::Branch;
      case MicroOpcode::VAdd: case MicroOpcode::VSub:
      case MicroOpcode::VAnd: case MicroOpcode::VOr: case MicroOpcode::VXor:
      case MicroOpcode::VShlI: case MicroOpcode::VShrI:
      case MicroOpcode::VMov:
      case MicroOpcode::FAddPs: case MicroOpcode::FSubPs:
      case MicroOpcode::FAddPd: case MicroOpcode::FSubPd:
        return FuClass::VecAlu;
      case MicroOpcode::VMulLo16:
      case MicroOpcode::FMulPs: case MicroOpcode::FMulPd:
        return FuClass::VecMul;
      case MicroOpcode::FDivPs: case MicroOpcode::FSqrtPs:
        return FuClass::VecFpDiv;
      case MicroOpcode::FAddS: case MicroOpcode::FSubS:
      case MicroOpcode::FMulS: case MicroOpcode::FDivS:
      case MicroOpcode::FSqrtS:
      case MicroOpcode::FAddSd: case MicroOpcode::FSubSd:
      case MicroOpcode::FMulSd:
        return FuClass::FpScalar;
      case MicroOpcode::Nop: case MicroOpcode::Halt:
      default:
        return FuClass::None;
    }
}

constexpr Cycles
fuLatencyOf(MicroOpcode op)
{
    switch (fuClassOf(op)) {
      case FuClass::IntAlu:
        return op == MicroOpcode::ReadCycles ? 12 : 1;
      case FuClass::IntMul:   return 3;
      case FuClass::Branch:   return 1;
      case FuClass::MemLoad:  return 0;   // memory system supplies latency
      case FuClass::MemStore: return 0;
      case FuClass::VecAlu:   return 1;
      case FuClass::VecMul:   return 5;
      case FuClass::VecFpDiv:
        return op == MicroOpcode::FSqrtPs ? 18 : 14;
      case FuClass::FpScalar:
        switch (op) {
          case MicroOpcode::FMulS: case MicroOpcode::FMulSd: return 5;
          case MicroOpcode::FDivS:  return 14;
          case MicroOpcode::FSqrtS: return 18;
          default: return 3;
        }
      case FuClass::None:     return 1;
    }
    return 1;
}

template <typename T, T (*Fn)(MicroOpcode)>
constexpr std::array<T, numMicroOpcodes>
makeOpcodeTable()
{
    std::array<T, numMicroOpcodes> table{};
    for (std::size_t i = 0; i < numMicroOpcodes; ++i)
        table[i] = Fn(static_cast<MicroOpcode>(i));
    return table;
}

inline constexpr auto fuClassTable =
    makeOpcodeTable<FuClass, fuClassOf>();
inline constexpr auto fuLatencyTable =
    makeOpcodeTable<Cycles, fuLatencyOf>();

} // namespace detail

/** Functional unit class a uop issues to. */
inline FuClass
fuClass(const Uop &uop)
{
    return detail::fuClassTable[static_cast<std::size_t>(uop.op)];
}

/** Execution latency in cycles (Sandy Bridge-like; memory excluded). */
inline Cycles
fuLatency(const Uop &uop)
{
    return detail::fuLatencyTable[static_cast<std::size_t>(uop.op)];
}

/** True iff the uop executes on the vector processing unit. */
inline bool
onVpu(const Uop &uop)
{
    const FuClass fu = fuClass(uop);
    return fu == FuClass::VecAlu || fu == FuClass::VecMul ||
           fu == FuClass::VecFpDiv;
}

/**
 * True iff the uop writes architecturally visible state: an
 * architectural GPR or XMM register (not a decoder temporary), the
 * flags register, or memory. This is the containment predicate the MCU
 * admission path enforces on custom translations that do not declare
 * allowArchWrites.
 */
inline bool
writesArchState(const Uop &uop)
{
    if (uop.isStore())
        return true;
    if (uop.writesFlags)
        return true;
    if (!uop.dst.valid())
        return false;
    if (uop.dst.cls == RegClass::Flags)
        return true;
    if (uop.dst.cls == RegClass::Int)
        return !uop.dst.isIntTemp();
    if (uop.dst.cls == RegClass::Vec)
        return !uop.dst.isVecTemp();
    return false;
}

/** Printable form, e.g. "ld t0, [rax+rbx*4+0x10]". */
std::string toString(const Uop &uop);

/** Printable register name (handles temporaries). */
std::string regName(const RegId &reg);

} // namespace csd

#endif // CSD_UOP_UOP_HH

#include "uop/translate.hh"

#include "common/logging.hh"

namespace csd
{

namespace
{

/** Map a scalar ALU macro-opcode (any form) to its micro-opcode. */
MicroOpcode
aluMicroOp(MacroOpcode op)
{
    switch (op) {
      case MacroOpcode::Add: case MacroOpcode::AddI: case MacroOpcode::AddM:
        return MicroOpcode::Add;
      case MacroOpcode::Adc: case MacroOpcode::AdcI:
        return MicroOpcode::Adc;
      case MacroOpcode::Sub: case MacroOpcode::SubI: case MacroOpcode::SubM:
        return MicroOpcode::Sub;
      case MacroOpcode::Sbb: case MacroOpcode::SbbI:
        return MicroOpcode::Sbb;
      case MacroOpcode::And: case MacroOpcode::AndI: case MacroOpcode::AndM:
        return MicroOpcode::And;
      case MacroOpcode::Or: case MacroOpcode::OrI: case MacroOpcode::OrM:
        return MicroOpcode::Or;
      case MacroOpcode::Xor: case MacroOpcode::XorI: case MacroOpcode::XorM:
        return MicroOpcode::Xor;
      case MacroOpcode::Shl: case MacroOpcode::ShlI:
        return MicroOpcode::Shl;
      case MacroOpcode::Shr: case MacroOpcode::ShrI:
        return MicroOpcode::Shr;
      case MacroOpcode::Sar: case MacroOpcode::SarI:
        return MicroOpcode::Sar;
      case MacroOpcode::Rol: case MacroOpcode::RolI:
        return MicroOpcode::Rol;
      case MacroOpcode::Ror: case MacroOpcode::RorI:
        return MicroOpcode::Ror;
      case MacroOpcode::Imul: case MacroOpcode::ImulM:
        return MicroOpcode::Mul;
      case MacroOpcode::Cmp: case MacroOpcode::CmpI: case MacroOpcode::CmpM:
        return MicroOpcode::Cmp;
      case MacroOpcode::Test: case MacroOpcode::TestI:
        return MicroOpcode::Test;
      case MacroOpcode::Not:
        return MicroOpcode::Not;
      case MacroOpcode::Neg:
        return MicroOpcode::Neg;
      default:
        csd_panic("aluMicroOp: not an ALU macro-op");
    }
}

/** Map a vector macro-opcode to (micro-opcode, lane width). */
std::pair<MicroOpcode, std::uint8_t>
vecMicroOp(MacroOpcode op)
{
    switch (op) {
      case MacroOpcode::Paddb:  return {MicroOpcode::VAdd, 1};
      case MacroOpcode::Paddw:  return {MicroOpcode::VAdd, 2};
      case MacroOpcode::Paddd:  return {MicroOpcode::VAdd, 4};
      case MacroOpcode::Paddq:  return {MicroOpcode::VAdd, 8};
      case MacroOpcode::Psubb:  return {MicroOpcode::VSub, 1};
      case MacroOpcode::Psubw:  return {MicroOpcode::VSub, 2};
      case MacroOpcode::Psubd:  return {MicroOpcode::VSub, 4};
      case MacroOpcode::Psubq:  return {MicroOpcode::VSub, 8};
      case MacroOpcode::Pand:   return {MicroOpcode::VAnd, 8};
      case MacroOpcode::Por:    return {MicroOpcode::VOr, 8};
      case MacroOpcode::Pxor:   return {MicroOpcode::VXor, 8};
      case MacroOpcode::Pmullw: return {MicroOpcode::VMulLo16, 2};
      case MacroOpcode::PslldI: return {MicroOpcode::VShlI, 4};
      case MacroOpcode::PsrldI: return {MicroOpcode::VShrI, 4};
      case MacroOpcode::Addps:  return {MicroOpcode::FAddPs, 4};
      case MacroOpcode::Mulps:  return {MicroOpcode::FMulPs, 4};
      case MacroOpcode::Subps:  return {MicroOpcode::FSubPs, 4};
      case MacroOpcode::Addpd:  return {MicroOpcode::FAddPd, 8};
      case MacroOpcode::Mulpd:  return {MicroOpcode::FMulPd, 8};
      case MacroOpcode::Subpd:  return {MicroOpcode::FSubPd, 8};
      case MacroOpcode::Divps:  return {MicroOpcode::FDivPs, 4};
      case MacroOpcode::Sqrtps: return {MicroOpcode::FSqrtPs, 4};
      default:
        csd_panic("vecMicroOp: not a vector ALU macro-op");
    }
}

/** Seed common metadata from the parent macro-op. */
Uop
baseUop(const MacroOp &macro, MicroOpcode op)
{
    Uop uop;
    uop.op = op;
    uop.macroPc = macro.pc;
    uop.width = macro.width;
    return uop;
}

/** Fill a uop's agen fields from a macro memory operand. */
void
setAgen(Uop &uop, const MemOperand &mem)
{
    if (mem.hasBase())
        uop.src1 = intReg(mem.base);
    if (mem.hasIndex())
        uop.src2 = intReg(mem.index);
    uop.scale = mem.scale;
    uop.disp = mem.disp;
    uop.memSize = static_cast<std::uint8_t>(mem.size);
}

void
finalizeIndices(UopFlow &flow)
{
    for (std::size_t i = 0; i < flow.uops.size(); ++i)
        flow.uops[i].uopIdx = static_cast<std::uint8_t>(
            i < 255 ? i : 255);
}

} // namespace

UopFlow
translateNative(const MacroOp &macro)
{
    UopFlow flow;
    auto &uops = flow.uops;

    switch (macro.opcode) {
      case MacroOpcode::MovRR: {
        Uop u = baseUop(macro, MicroOpcode::Mov);
        u.dst = intReg(macro.dst);
        u.src1 = intReg(macro.src1);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::MovRI: {
        Uop u = baseUop(macro, MicroOpcode::LoadImm);
        u.dst = intReg(macro.dst);
        u.imm = macro.imm;
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Load: {
        Uop u = baseUop(macro, MicroOpcode::Load);
        u.dst = intReg(macro.dst);
        setAgen(u, macro.mem);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Store: {
        Uop u = baseUop(macro, MicroOpcode::Store);
        setAgen(u, macro.mem);
        u.src3 = intReg(macro.src1);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::StoreImm: {
        Uop u = baseUop(macro, MicroOpcode::StoreImm);
        setAgen(u, macro.mem);
        u.imm = macro.imm;
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Lea: {
        Uop u = baseUop(macro, MicroOpcode::Lea);
        u.dst = intReg(macro.dst);
        setAgen(u, macro.mem);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Push: {
        Uop sub = baseUop(macro, MicroOpcode::Sub);
        sub.dst = intReg(Gpr::Rsp);
        sub.src1 = intReg(Gpr::Rsp);
        sub.immData = true;
        sub.imm = 8;
        uops.push_back(sub);
        Uop st = baseUop(macro, MicroOpcode::Store);
        st.src1 = intReg(Gpr::Rsp);
        st.src3 = intReg(macro.src1);
        st.memSize = 8;
        uops.push_back(st);
        break;
      }
      case MacroOpcode::Pop: {
        Uop ld = baseUop(macro, MicroOpcode::Load);
        ld.dst = intReg(macro.dst);
        ld.src1 = intReg(Gpr::Rsp);
        ld.memSize = 8;
        uops.push_back(ld);
        Uop add = baseUop(macro, MicroOpcode::Add);
        add.dst = intReg(Gpr::Rsp);
        add.src1 = intReg(Gpr::Rsp);
        add.immData = true;
        add.imm = 8;
        uops.push_back(add);
        break;
      }

      // Register-register ALU
      case MacroOpcode::Add: case MacroOpcode::Adc: case MacroOpcode::Sub:
      case MacroOpcode::Sbb: case MacroOpcode::And: case MacroOpcode::Or:
      case MacroOpcode::Xor: case MacroOpcode::Shl: case MacroOpcode::Shr:
      case MacroOpcode::Sar: case MacroOpcode::Rol: case MacroOpcode::Ror:
      case MacroOpcode::Imul: case MacroOpcode::Cmp:
      case MacroOpcode::Test: {
        Uop u = baseUop(macro, aluMicroOp(macro.opcode));
        const bool compare_only = macro.opcode == MacroOpcode::Cmp ||
                                  macro.opcode == MacroOpcode::Test;
        if (!compare_only)
            u.dst = intReg(macro.dst);
        u.src1 = intReg(macro.dst);
        u.src2 = intReg(macro.src1);
        u.writesFlags = writesFlags(macro);
        u.readsFlags = readsFlags(macro);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Not: case MacroOpcode::Neg: {
        Uop u = baseUop(macro, aluMicroOp(macro.opcode));
        u.dst = intReg(macro.dst);
        u.src1 = intReg(macro.dst);
        u.writesFlags = writesFlags(macro);
        uops.push_back(u);
        break;
      }

      // Register-immediate ALU
      case MacroOpcode::AddI: case MacroOpcode::AdcI: case MacroOpcode::SubI:
      case MacroOpcode::SbbI: case MacroOpcode::AndI: case MacroOpcode::OrI:
      case MacroOpcode::XorI: case MacroOpcode::ShlI: case MacroOpcode::ShrI:
      case MacroOpcode::SarI: case MacroOpcode::RolI: case MacroOpcode::RorI:
      case MacroOpcode::CmpI: case MacroOpcode::TestI: {
        Uop u = baseUop(macro, aluMicroOp(macro.opcode));
        const bool compare_only = macro.opcode == MacroOpcode::CmpI ||
                                  macro.opcode == MacroOpcode::TestI;
        if (!compare_only)
            u.dst = intReg(macro.dst);
        u.src1 = intReg(macro.dst);
        u.immData = true;
        u.imm = macro.imm;
        u.writesFlags = writesFlags(macro);
        u.readsFlags = readsFlags(macro);
        uops.push_back(u);
        break;
      }

      // Load-op forms: ld t0, [mem]; op dst, dst, t0 — micro-fused pair.
      case MacroOpcode::AddM: case MacroOpcode::SubM: case MacroOpcode::AndM:
      case MacroOpcode::OrM: case MacroOpcode::XorM: case MacroOpcode::CmpM:
      case MacroOpcode::ImulM: {
        Uop ld = baseUop(macro, MicroOpcode::Load);
        ld.dst = intTemp(0);
        setAgen(ld, macro.mem);
        ld.fusedLeader = true;
        uops.push_back(ld);
        Uop op = baseUop(macro, aluMicroOp(macro.opcode));
        if (macro.opcode != MacroOpcode::CmpM)
            op.dst = intReg(macro.dst);
        op.src1 = intReg(macro.dst);
        op.src2 = intTemp(0);
        op.writesFlags = writesFlags(macro);
        op.fusedFollower = true;
        uops.push_back(op);
        break;
      }

      case MacroOpcode::Jmp: {
        Uop u = baseUop(macro, MicroOpcode::Br);
        u.cond = Cond::Always;
        u.target = macro.target;
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Jcc: {
        Uop u = baseUop(macro, MicroOpcode::Br);
        u.cond = macro.cond;
        u.target = macro.target;
        u.readsFlags = true;
        uops.push_back(u);
        break;
      }
      case MacroOpcode::JmpInd: {
        Uop u = baseUop(macro, MicroOpcode::BrInd);
        u.src1 = intReg(macro.src1);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Call: {
        Uop sub = baseUop(macro, MicroOpcode::Sub);
        sub.dst = intReg(Gpr::Rsp);
        sub.src1 = intReg(Gpr::Rsp);
        sub.immData = true;
        sub.imm = 8;
        uops.push_back(sub);
        Uop st = baseUop(macro, MicroOpcode::StoreImm);
        st.src1 = intReg(Gpr::Rsp);
        st.imm = static_cast<std::int64_t>(macro.nextPc());
        st.memSize = 8;
        uops.push_back(st);
        Uop br = baseUop(macro, MicroOpcode::Br);
        br.cond = Cond::Always;
        br.target = macro.target;
        uops.push_back(br);
        break;
      }
      case MacroOpcode::Ret: {
        Uop ld = baseUop(macro, MicroOpcode::Load);
        ld.dst = intTemp(0);
        ld.src1 = intReg(Gpr::Rsp);
        ld.memSize = 8;
        uops.push_back(ld);
        Uop add = baseUop(macro, MicroOpcode::Add);
        add.dst = intReg(Gpr::Rsp);
        add.src1 = intReg(Gpr::Rsp);
        add.immData = true;
        add.imm = 8;
        uops.push_back(add);
        Uop br = baseUop(macro, MicroOpcode::BrInd);
        br.src1 = intTemp(0);
        uops.push_back(br);
        break;
      }

      case MacroOpcode::MovdqaLoad: {
        Uop u = baseUop(macro, MicroOpcode::LoadVec);
        u.dst = vecReg(macro.xdst);
        setAgen(u, macro.mem);
        u.memSize = 16;
        uops.push_back(u);
        break;
      }
      case MacroOpcode::MovdqaStore: {
        Uop u = baseUop(macro, MicroOpcode::StoreVec);
        setAgen(u, macro.mem);
        u.src3 = vecReg(macro.xsrc);
        u.memSize = 16;
        uops.push_back(u);
        break;
      }
      case MacroOpcode::MovdqaRR: {
        Uop u = baseUop(macro, MicroOpcode::VMov);
        u.dst = vecReg(macro.xdst);
        u.src1 = vecReg(macro.xsrc);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::PslldI: case MacroOpcode::PsrldI: {
        auto [mop, lane] = vecMicroOp(macro.opcode);
        Uop u = baseUop(macro, mop);
        u.dst = vecReg(macro.xdst);
        u.src1 = vecReg(macro.xdst);
        u.lane = lane;
        u.immData = true;
        u.imm = macro.imm;
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Paddb: case MacroOpcode::Paddw:
      case MacroOpcode::Paddd: case MacroOpcode::Paddq:
      case MacroOpcode::Psubb: case MacroOpcode::Psubw:
      case MacroOpcode::Psubd: case MacroOpcode::Psubq:
      case MacroOpcode::Pand: case MacroOpcode::Por: case MacroOpcode::Pxor:
      case MacroOpcode::Pmullw:
      case MacroOpcode::Addps: case MacroOpcode::Mulps:
      case MacroOpcode::Subps: case MacroOpcode::Addpd:
      case MacroOpcode::Mulpd: case MacroOpcode::Subpd:
      case MacroOpcode::Divps: case MacroOpcode::Sqrtps: {
        auto [mop, lane] = vecMicroOp(macro.opcode);
        Uop u = baseUop(macro, mop);
        u.dst = vecReg(macro.xdst);
        u.src1 = vecReg(macro.xdst);
        u.src2 = vecReg(macro.xsrc);
        u.lane = lane;
        uops.push_back(u);
        break;
      }

      case MacroOpcode::Nop: {
        uops.push_back(baseUop(macro, MicroOpcode::Nop));
        break;
      }
      case MacroOpcode::Clflush: {
        Uop u = baseUop(macro, MicroOpcode::CacheFlush);
        setAgen(u, macro.mem);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Rdtsc: {
        Uop u = baseUop(macro, MicroOpcode::ReadCycles);
        u.dst = intReg(Gpr::Rax);
        uops.push_back(u);
        break;
      }
      case MacroOpcode::Cpuid: {
        // A long microsequenced flow standing in for CPUID's serializing
        // busywork: clobber rax..rdx and burn front-end slots.
        for (unsigned i = 0; i < 4; ++i) {
            Uop u = baseUop(macro, MicroOpcode::LoadImm);
            u.dst = intReg(static_cast<Gpr>(i));
            u.imm = 0;
            uops.push_back(u);
        }
        for (unsigned i = 0; i < 16; ++i)
            uops.push_back(baseUop(macro, MicroOpcode::Nop));
        flow.fromMsrom = true;
        break;
      }
      case MacroOpcode::RepStosI: {
        // t0 = base; loop: st [t0], 0 ; t0 += 64 (one store per block).
        Uop limm = baseUop(macro, MicroOpcode::LoadImm);
        limm.dst = intTemp(0);
        limm.imm = macro.imm;
        uops.push_back(limm);
        Uop st = baseUop(macro, MicroOpcode::StoreImm);
        st.src1 = intTemp(0);
        st.imm = 0;
        st.memSize = 8;
        uops.push_back(st);
        Uop add = baseUop(macro, MicroOpcode::Add);
        add.dst = intTemp(0);
        add.src1 = intTemp(0);
        add.immData = true;
        add.imm = cacheBlockSize;
        uops.push_back(add);
        MicroLoop loop;
        loop.bodyStart = 1;
        loop.bodyEnd = 3;
        loop.tripCount = static_cast<std::uint32_t>(macro.imm2);
        flow.loop = loop;
        flow.fromMsrom = true;
        break;
      }
      case MacroOpcode::Halt: {
        uops.push_back(baseUop(macro, MicroOpcode::Halt));
        break;
      }

      default:
        csd_panic("translateNative: unhandled macro-opcode ",
                  static_cast<int>(macro.opcode));
    }

    if (uops.size() > 4)
        flow.fromMsrom = true;
    finalizeIndices(flow);
    return flow;
}

unsigned
nativeUopCount(MacroOpcode op)
{
    switch (op) {
      case MacroOpcode::Push:
      case MacroOpcode::Pop:
      case MacroOpcode::AddM: case MacroOpcode::SubM:
      case MacroOpcode::AndM: case MacroOpcode::OrM: case MacroOpcode::XorM:
      case MacroOpcode::CmpM: case MacroOpcode::ImulM:
        return 2;
      case MacroOpcode::Call:
      case MacroOpcode::Ret:
      case MacroOpcode::RepStosI:
        return 3;
      case MacroOpcode::Cpuid:
        return 20;
      default:
        return 1;
    }
}

bool
nativelyMicrosequenced(MacroOpcode op)
{
    return op == MacroOpcode::Cpuid || op == MacroOpcode::RepStosI;
}

} // namespace csd

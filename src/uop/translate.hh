/**
 * @file
 * Static table-driven native translation: macro-op -> micro-op flow.
 *
 * This is the translation performed by the four native x86 decoders and
 * the microcode ROM (paper §III-A). Context-sensitive custom decoders
 * wrap or replace this translation (see csd/).
 */

#ifndef CSD_UOP_TRANSLATE_HH
#define CSD_UOP_TRANSLATE_HH

#include "isa/macroop.hh"
#include "uop/flow.hh"

namespace csd
{

/** Translate one macro-op with the native (static) translation tables. */
UopFlow translateNative(const MacroOp &op);

/**
 * Number of uops the native translation produces (static slots, not
 * loop-expanded). Used by the decode stage to steer instructions to the
 * complex decoder or the MSROM.
 */
unsigned nativeUopCount(MacroOpcode op);

/** True iff the native translation must be microsequenced (> 4 uops). */
bool nativelyMicrosequenced(MacroOpcode op);

} // namespace csd

#endif // CSD_UOP_TRANSLATE_HH

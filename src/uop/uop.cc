#include "uop/uop.hh"

#include <sstream>

#include "common/logging.hh"

namespace csd
{

std::string
regName(const RegId &reg)
{
    switch (reg.cls) {
      case RegClass::Int:
        if (reg.idx < numGprs)
            return gprName(static_cast<Gpr>(reg.idx));
        return "t" + std::to_string(reg.idx - numGprs);
      case RegClass::Vec:
        if (reg.idx < numXmms)
            return xmmName(static_cast<Xmm>(reg.idx));
        return "vt" + std::to_string(reg.idx - numXmms);
      case RegClass::Flags:
        return "flags";
      case RegClass::None:
        return "-";
    }
    return "?";
}

namespace
{

const char *
uopMnemonic(MicroOpcode op)
{
    switch (op) {
      case MicroOpcode::Add:      return "add";
      case MicroOpcode::Adc:      return "adc";
      case MicroOpcode::Sub:      return "sub";
      case MicroOpcode::Sbb:      return "sbb";
      case MicroOpcode::And:      return "and";
      case MicroOpcode::Or:       return "or";
      case MicroOpcode::Xor:      return "xor";
      case MicroOpcode::Shl:      return "shl";
      case MicroOpcode::Shr:      return "shr";
      case MicroOpcode::Sar:      return "sar";
      case MicroOpcode::Rol:      return "rol";
      case MicroOpcode::Ror:      return "ror";
      case MicroOpcode::Mul:      return "mul";
      case MicroOpcode::Not:      return "not";
      case MicroOpcode::Neg:      return "neg";
      case MicroOpcode::Mov:      return "mov";
      case MicroOpcode::LoadImm:  return "limm";
      case MicroOpcode::Lea:      return "lea";
      case MicroOpcode::Cmp:      return "cmp";
      case MicroOpcode::Test:     return "test";
      case MicroOpcode::Load:     return "ld";
      case MicroOpcode::Store:    return "st";
      case MicroOpcode::StoreImm: return "sti";
      case MicroOpcode::LoadVec:  return "vld";
      case MicroOpcode::StoreVec: return "vst";
      case MicroOpcode::Br:       return "br";
      case MicroOpcode::BrInd:    return "brind";
      case MicroOpcode::VAdd:     return "vadd";
      case MicroOpcode::VSub:     return "vsub";
      case MicroOpcode::VAnd:     return "vand";
      case MicroOpcode::VOr:      return "vor";
      case MicroOpcode::VXor:     return "vxor";
      case MicroOpcode::VMulLo16: return "vmul16";
      case MicroOpcode::VShlI:    return "vshl";
      case MicroOpcode::VShrI:    return "vshr";
      case MicroOpcode::VMov:     return "vmov";
      case MicroOpcode::FAddPs:   return "faddps";
      case MicroOpcode::FMulPs:   return "fmulps";
      case MicroOpcode::FSubPs:   return "fsubps";
      case MicroOpcode::FAddPd:   return "faddpd";
      case MicroOpcode::FMulPd:   return "fmulpd";
      case MicroOpcode::FSubPd:   return "fsubpd";
      case MicroOpcode::FDivPs:   return "fdivps";
      case MicroOpcode::FSqrtPs:  return "fsqrtps";
      case MicroOpcode::VExtract: return "vext";
      case MicroOpcode::VInsert:  return "vins";
      case MicroOpcode::FAddS:    return "fadds";
      case MicroOpcode::FSubS:    return "fsubs";
      case MicroOpcode::FMulS:    return "fmuls";
      case MicroOpcode::FDivS:    return "fdivs";
      case MicroOpcode::FSqrtS:   return "fsqrts";
      case MicroOpcode::FAddSd:   return "faddsd";
      case MicroOpcode::FSubSd:   return "fsubsd";
      case MicroOpcode::FMulSd:   return "fmulsd";
      case MicroOpcode::CacheFlush: return "clflush";
      case MicroOpcode::ReadCycles: return "rdtsc";
      case MicroOpcode::Nop:      return "nop";
      case MicroOpcode::Halt:     return "halt";
      default:                    return "???";
    }
}

std::string
agenString(const Uop &uop)
{
    std::ostringstream os;
    os << "[";
    bool any = false;
    if (uop.src1.valid()) {
        os << regName(uop.src1);
        any = true;
    }
    if (uop.src2.valid() && uop.isMem()) {
        if (any)
            os << "+";
        os << regName(uop.src2);
        if (uop.scale != 1)
            os << "*" << static_cast<int>(uop.scale);
        any = true;
    }
    if (uop.disp != 0 || !any) {
        if (any && uop.disp >= 0)
            os << "+";
        os << "0x" << std::hex << uop.disp;
    }
    os << "]";
    return os.str();
}

} // namespace

std::string
toString(const Uop &uop)
{
    std::ostringstream os;
    if (uop.decoy)
        os << "*";
    if (uop.op == MicroOpcode::Br && uop.cond != Cond::Always) {
        os << "br_" << condName(uop.cond) << " 0x" << std::hex
           << uop.target;
        return os.str();
    }
    os << uopMnemonic(uop.op);
    switch (uop.op) {
      case MicroOpcode::Load:
      case MicroOpcode::LoadVec:
        os << " " << regName(uop.dst) << ", " << agenString(uop);
        break;
      case MicroOpcode::Store:
      case MicroOpcode::StoreVec:
        os << " " << agenString(uop) << ", " << regName(uop.src3);
        break;
      case MicroOpcode::StoreImm:
        os << " " << agenString(uop) << ", 0x" << std::hex << uop.imm;
        break;
      case MicroOpcode::Br:
        os << " 0x" << std::hex << uop.target;
        break;
      case MicroOpcode::BrInd:
        os << " " << regName(uop.src1);
        break;
      case MicroOpcode::LoadImm:
        os << " " << regName(uop.dst) << ", 0x" << std::hex << uop.imm;
        break;
      case MicroOpcode::Nop:
      case MicroOpcode::Halt:
        break;
      default:
        if (uop.dst.valid())
            os << " " << regName(uop.dst);
        if (uop.src1.valid())
            os << ", " << regName(uop.src1);
        if (uop.immData)
            os << ", 0x" << std::hex << uop.imm;
        else if (uop.src2.valid())
            os << ", " << regName(uop.src2);
        break;
    }
    return os.str();
}

} // namespace csd

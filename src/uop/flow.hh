/**
 * @file
 * A micro-op flow: the translation of one macro-op.
 *
 * Flows may contain a micro-loop — a contiguous body of uops replayed a
 * statically known number of times by the microsequencer. Decoy
 * injection (paper Fig. 4c) and microsequenced string operations use
 * this. Trip counts are always known at translation time because the
 * context-sensitive decoder snapshots the decoy address-range MSRs into
 * its internal registers when a translation mode is triggered.
 */

#ifndef CSD_UOP_FLOW_HH
#define CSD_UOP_FLOW_HH

#include <cstdint>
#include <optional>

#include "common/small_vector.hh"
#include "uop/uop.hh"

namespace csd
{

/**
 * Container for a flow's micro-ops. Most translations are 1-4 uops
 * (the paper's Table 1 workloads average ~1.2 uops per macro-op), so
 * four inline slots keep the common case allocation-free; only
 * decoy-injected, devectorized, and microsequenced flows spill.
 */
using UopVec = SmallVector<Uop, 4>;

/** A statically counted micro-loop within a flow. */
struct MicroLoop
{
    std::uint16_t bodyStart = 0;  //!< first uop index of the body
    std::uint16_t bodyEnd = 0;    //!< one past the last body uop
    std::uint32_t tripCount = 0;  //!< number of body iterations
};

/** The translation of one macro-op into micro-ops. */
struct UopFlow
{
    UopVec uops;
    std::optional<MicroLoop> loop;

    /** Delivered by the MSROM microsequencer rather than a decoder. */
    bool fromMsrom = false;

    /**
     * Eligible for the micro-op cache. Per-instance randomized
     * translations (timing-noise injection) must not be cached, or the
     * cache would replay one fixed instance and defeat the noise.
     */
    bool cacheable = true;

    /**
     * Number of uops the flow delivers dynamically, expanding the
     * micro-loop (one body replay counts each body uop once per trip).
     */
    std::uint64_t
    expandedCount() const
    {
        std::uint64_t count = uops.size();
        if (loop && loop->tripCount > 0) {
            const std::uint64_t body = loop->bodyEnd - loop->bodyStart;
            count += body * (loop->tripCount - 1);
        }
        return count;
    }

    /**
     * Number of slots the flow occupies in fused-domain structures
     * (uop queue, uop cache): fused pairs count once.
     */
    std::uint64_t
    fusedSlotCount() const
    {
        std::uint64_t slots = 0;
        for (const Uop &uop : uops)
            if (!uop.fusedFollower)
                ++slots;
        return slots;
    }

    /** True iff any uop in the flow executes on the VPU. */
    bool
    usesVpu() const
    {
        for (const Uop &uop : uops)
            if (onVpu(uop))
                return true;
        return false;
    }
};

} // namespace csd

#endif // CSD_UOP_FLOW_HH

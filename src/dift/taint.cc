#include "dift/taint.hh"

#include "common/trace.hh"

namespace csd
{

TaintTracker::TaintTracker() : stats_("dift")
{
    stats_.addCounter("tainted_loads", &taintedLoads_,
                      "loads flagged as key-dependent at decode");
    stats_.addCounter("tainted_branches", &taintedBranches_,
                      "branches flagged as key-dependent at decode");
    stats_.addCounter("propagations", &propagations_,
                      "uops through which taint propagated");
}

void
TaintTracker::addTaintSource(const AddrRange &range)
{
    sources_.push_back(range);
    // Pre-taint the source bytes themselves.
    taintMem(range.start, static_cast<unsigned>(range.size()), true);
}

void
TaintTracker::reset()
{
    sources_.clear();
    regTaint_.reset();
    taintedGranules_.clear();
}

void
TaintTracker::setRegTaint(const RegId &reg, bool tainted)
{
    if (!reg.valid())
        return;
    regTaint_.set(reg.flatIndex(), tainted);
}

void
TaintTracker::taintMem(Addr addr, unsigned size, bool tainted)
{
    const Addr first = addr >> granuleShift;
    const Addr last = (addr + (size ? size - 1 : 0)) >> granuleShift;
    for (Addr granule = first; granule <= last; ++granule) {
        if (tainted)
            taintedGranules_.insert(granule);
        else
            taintedGranules_.erase(granule);
    }
}

bool
TaintTracker::memTainted(Addr addr, unsigned size) const
{
    const Addr first = addr >> granuleShift;
    const Addr last = (addr + (size ? size - 1 : 0)) >> granuleShift;
    for (Addr granule = first; granule <= last; ++granule)
        if (taintedGranules_.count(granule))
            return true;
    for (const AddrRange &range : sources_)
        if (range.overlaps(AddrRange(addr, addr + (size ? size : 1))))
            return true;
    return false;
}

bool
TaintTracker::taintedLoadOrBranch(const MacroOp &op) const
{
    if (op.hasMem && (isMemRead(op) || isMemWrite(op))) {
        const bool base_taint =
            op.mem.hasBase() && regTainted(intReg(op.mem.base));
        const bool index_taint =
            op.mem.hasIndex() && regTainted(intReg(op.mem.index));
        // A store whose data register carries taint is equally
        // key-dependent (the DIFT intercepts the tainted operand).
        const bool data_taint = op.opcode == MacroOpcode::Store &&
                                op.src1 != Gpr::Invalid &&
                                regTainted(intReg(op.src1));
        if (base_taint || index_taint || data_taint) {
            if (isMemRead(op))
                ++const_cast<Counter &>(taintedLoads_);
            CSD_TRACE_NOW(Dift, "tainted_load", 'i', "pc",
                          static_cast<double>(op.pc));
            return true;
        }
        return false;
    }
    if (op.opcode == MacroOpcode::Jcc && op.cond != Cond::Always) {
        if (regTainted(flagsReg())) {
            ++const_cast<Counter &>(taintedBranches_);
            CSD_TRACE_NOW(Dift, "tainted_branch", 'i', "pc",
                          static_cast<double>(op.pc));
            return true;
        }
        return false;
    }
    if (op.opcode == MacroOpcode::JmpInd || op.opcode == MacroOpcode::Ret) {
        if (op.opcode == MacroOpcode::JmpInd &&
            regTainted(intReg(op.src1))) {
            ++const_cast<Counter &>(taintedBranches_);
            CSD_TRACE_NOW(Dift, "tainted_branch", 'i', "pc",
                          static_cast<double>(op.pc));
            return true;
        }
        return false;
    }
    return false;
}

bool
TaintTracker::uopSourceTaint(const Uop &uop, Addr eff_addr) const
{
    bool tainted = false;
    if (uop.isLoad()) {
        // Data taint plus pointer taint: a lookup indexed by a tainted
        // value yields a tainted value (the AES T-table pattern).
        tainted = memTainted(eff_addr, uop.memSize);
        if (uop.src1.valid())
            tainted = tainted || regTainted(uop.src1);
        if (uop.src2.valid())
            tainted = tainted || regTainted(uop.src2);
        return tainted;
    }
    if (uop.src1.valid())
        tainted = tainted || regTainted(uop.src1);
    if (!uop.immData && uop.src2.valid() && !uop.isMem())
        tainted = tainted || regTainted(uop.src2);
    if (uop.readsFlags)
        tainted = tainted || regTainted(flagsReg());
    return tainted;
}

void
TaintTracker::propagate(const UopFlow &flow, const FlowResult &result)
{
    (void)flow;
    for (const DynUop &dyn : result.dynUops) {
        const Uop &uop = *dyn.uop;
        if (uop.decoy)
            continue;  // decoys live outside the program dataflow

        if (uop.isStore()) {
            bool data_taint = uop.src3.valid() && regTainted(uop.src3);
            // Pointer taint flows into the stored location as well.
            if (uop.src1.valid())
                data_taint = data_taint || regTainted(uop.src1);
            if (uop.src2.valid())
                data_taint = data_taint || regTainted(uop.src2);
            taintMem(dyn.effAddr, uop.memSize, data_taint);
            if (data_taint)
                ++propagations_;
            continue;
        }

        if (uop.isBranch())
            continue;  // no data result

        const bool tainted = uopSourceTaint(uop, dyn.effAddr);
        // Immediate loads break dependences (limm overwrites dst).
        const bool clears = uop.op == MicroOpcode::LoadImm;
        if (uop.dst.valid())
            setRegTaint(uop.dst, clears ? false : tainted);
        if (uop.writesFlags)
            setRegTaint(flagsReg(), tainted);
        if (tainted)
            ++propagations_;
    }
}

} // namespace csd

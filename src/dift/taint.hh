/**
 * @file
 * Lightweight hardware dynamic information-flow tracking (DIFT).
 *
 * The paper uses DIFT as the trigger that detects key-dependent loads
 * and branches and enables stealth-mode translation (§VI-A), charging
 * it an extra 4-cycle L2 tag-access latency. This module tracks taint
 * through registers, flags, and shadow memory. Taint sources are
 * address ranges (the key material).
 */

#ifndef CSD_DIFT_TAINT_HH
#define CSD_DIFT_TAINT_HH

#include <bitset>
#include <unordered_set>
#include <vector>

#include "common/addr_range.hh"
#include "common/stats.hh"
#include "cpu/executor.hh"
#include "uop/flow.hh"

namespace csd
{

/** Register + shadow-memory taint tracker. */
class TaintTracker
{
  public:
    TaintTracker();

    /** Mark an address range as a taint source (e.g. the secret key). */
    void addTaintSource(const AddrRange &range);

    /** Drop all taint state and sources. */
    void reset();

    /** Is a register currently tainted? */
    bool regTainted(const RegId &reg) const
    {
        return regTaint_.test(reg.flatIndex());
    }

    /** Is any byte of [addr, addr+size) tainted? */
    bool memTainted(Addr addr, unsigned size) const;

    /**
     * Decode-time check: does @p op constitute a tainted load, store,
     * or branch — i.e. should stealth-mode translation inject decoys
     * for it? A memory op is tainted if any address register is; a
     * conditional branch if the flags are; an indirect branch if its
     * target register is.
     */
    bool taintedLoadOrBranch(const MacroOp &op) const;

    /**
     * Propagate taint through an executed flow. Decoy micro-ops are
     * skipped: they exist outside the program's dataflow.
     */
    void propagate(const UopFlow &flow, const FlowResult &result);

    StatGroup &stats() { return stats_; }

  private:
    void setRegTaint(const RegId &reg, bool tainted);
    bool uopSourceTaint(const Uop &uop, Addr eff_addr) const;
    void taintMem(Addr addr, unsigned size, bool tainted);

    static constexpr unsigned granuleShift = 3; //!< 8-byte granules

    std::vector<AddrRange> sources_;
    std::bitset<numFlatRegs> regTaint_;
    std::unordered_set<Addr> taintedGranules_;

    StatGroup stats_;
    Counter taintedLoads_;
    Counter taintedBranches_;
    Counter propagations_;
};

} // namespace csd

#endif // CSD_DIFT_TAINT_HH

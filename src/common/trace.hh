/**
 * @file
 * Event tracing (gem5-DPRINTF-style flags, Chrome trace-event export).
 *
 * Components guard trace points with a named flag; a disabled flag
 * costs one mask test and branch. Enabled flags record timestamped
 * events into a bounded ring buffer that exports as Chrome
 * trace-event JSON, loadable in chrome://tracing or Perfetto: micro-op
 * cache hits vs legacy decode, decoy injections, and VPU gate/ungate
 * transitions appear on a cycle timeline, one track per flag.
 *
 * Runtime control:
 *  - CSD_TRACE=UopCache,Gating   enable flags at startup (CSV of names)
 *  - CSD_TRACE_FILE=out.json     write the Chrome trace at exit; a "%c"
 *                                in the path expands to the owning
 *                                observability-context id so parallel
 *                                simulations write distinct files
 *  - CSD_TRACE_CAPACITY=N        ring-buffer size (default 65536 events)
 *
 * TraceManager is instantiable: each ObservabilityContext
 * (obs/context.hh) owns one, and binding a context to a thread points
 * the thread-local fast path (trace_detail::mask / ::current) at that
 * context's tracer. Trace points therefore record into whichever
 * simulation is executing on the current thread, which is what lets N
 * simulations trace concurrently without sharing a ring. A single
 * tracer must not be driven from two threads at once; distinct tracers
 * on distinct threads are independent.
 */

#ifndef CSD_COMMON_TRACE_HH
#define CSD_COMMON_TRACE_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace csd
{

/** Named trace flags, one timeline track each. */
enum class TraceFlag : unsigned
{
    Frontend,  //!< delivery-source switches, fetch stalls
    UopCache,  //!< window probes, fills, context flushes
    Csd,       //!< context switches, stealth triggers, watchdog fires
    Decoy,     //!< decoy micro-op injections
    Gating,    //!< VPU gate/wake transitions, demand wakes
    Cache,     //!< DRAM accesses, clflushes
    Dift,      //!< tainted loads/branches detected at decode
    NumFlags,
};

class TraceManager;

namespace trace_detail
{
/**
 * Cached copy of the bound tracer's flag mask so the fast path stays
 * one thread-local load; kept in sync by enable/disable/bindToThread.
 */
extern thread_local std::uint32_t mask;

/**
 * The tracer bound to this thread. Null until a TraceManager (usually
 * via an ObservabilityContext) is bound; `mask` is 0 whenever this is
 * null, so CSD_TRACE never dereferences a null tracer.
 */
extern thread_local TraceManager *current;
} // namespace trace_detail

/** Fast-path check compiled into every trace point. */
inline bool
traceEnabled(TraceFlag flag)
{
    return trace_detail::mask & (1u << static_cast<unsigned>(flag));
}

/** True iff any flag is enabled on the tracer bound to this thread. */
inline bool
traceAnyEnabled()
{
    return trace_detail::mask != 0;
}

/** One recorded event. Names must be string literals (not copied). */
struct TraceEvent
{
    Tick tick = 0;
    TraceFlag flag = TraceFlag::Frontend;
    const char *name = nullptr;
    char phase = 'i';  //!< Chrome phase: 'i' instant, 'B' begin, 'E' end
    const char *argName = nullptr;
    double arg = 0.0;
};

/**
 * A bounded-ring event tracer. The process-wide default lives behind
 * instance(); per-simulation tracers are owned by ObservabilityContext.
 */
class TraceManager
{
  public:
    /** Default ring capacity (events) when none is configured. */
    static constexpr std::size_t defaultCapacity = 1u << 16;

    /**
     * A tracer with all flags disabled. The ring is allocated lazily on
     * the first record(), so idle tracers (one per simulation) cost a
     * few words, not capacity * sizeof(TraceEvent).
     */
    explicit TraceManager(std::size_t capacity = defaultCapacity);

    TraceManager(const TraceManager &) = delete;
    TraceManager &operator=(const TraceManager &) = delete;

    /**
     * The process-default tracer (never destroyed; first call reads
     * CSD_TRACE*). Binds itself to the calling thread if no tracer is
     * bound yet, preserving the historical global-tracer behavior for
     * code that predates observability contexts.
     */
    static TraceManager &instance();

    // --- thread binding ---------------------------------------------------

    /**
     * Make this tracer the recording target of CSD_TRACE on the
     * calling thread (installs the mask cache and current pointer).
     */
    void bindToThread();

    /** The tracer bound to the calling thread, or null. */
    static TraceManager *boundToThread() { return trace_detail::current; }

    // --- configuration ----------------------------------------------------

    /**
     * Enable the flags named in a comma-separated list ("UopCache,
     * Gating"); names are case-insensitive, "all" enables every flag,
     * and unknown names warn. Returns the number of flags enabled.
     */
    unsigned configure(const std::string &csv);

    void enable(TraceFlag flag);
    void disable(TraceFlag flag);
    void disableAll();
    bool enabled(TraceFlag flag) const
    {
        return mask_ & (1u << static_cast<unsigned>(flag));
    }

    /** Bitmask of enabled flags (bit i = TraceFlag(i)). */
    std::uint32_t mask() const { return mask_; }

    /** Replace the whole flag mask (used for context inheritance). */
    void setMask(std::uint32_t mask);

    /** Resize the ring buffer (drops recorded events). */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return capacity_; }

    // --- recording --------------------------------------------------------

    /** Record an event at @p tick. Call only when enabled(flag). */
    void record(TraceFlag flag, const char *name, Tick tick,
                char phase = 'i', const char *arg_name = nullptr,
                double arg = 0.0);

    /** Record at the current time hint (components without a clock). */
    void recordNow(TraceFlag flag, const char *name, char phase = 'i',
                   const char *arg_name = nullptr, double arg = 0.0)
    {
        record(flag, name, timeHint_, phase, arg_name, arg);
    }

    /** Cycle stamp used by recordNow(); the simulator updates it. */
    void setTimeHint(Tick tick) { timeHint_ = tick; }
    Tick timeHint() const { return timeHint_; }

    // --- inspection / export ----------------------------------------------

    /** Number of events currently held (≤ capacity). */
    std::size_t size() const { return count_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Drop all recorded events. */
    void clear();

    /** Events in record order (oldest first). */
    std::vector<TraceEvent> events() const;

    /**
     * Write the recorded events as Chrome trace-event JSON
     * ({"traceEvents": [...]}); cycles map to microseconds so one
     * trace unit renders as one cycle.
     */
    void exportChromeTrace(std::ostream &os) const;

    /** exportChromeTrace to a file; warns and returns false on error. */
    bool exportChromeTrace(const std::string &path) const;

    // --- flag names -------------------------------------------------------

    static const char *flagName(TraceFlag flag);
    static std::optional<TraceFlag> parseFlag(const std::string &name);

  private:
    void initFromEnv();

    /** Push mask_ into the thread-local cache iff bound to this thread. */
    void syncThreadMask();

    std::uint32_t mask_ = 0;
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;  //!< empty until the first record()
    std::size_t start_ = 0;         //!< index of the oldest event
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;
    Tick timeHint_ = 0;
};

/**
 * Record a trace event iff @p flag is enabled on this thread's tracer.
 * Usage: CSD_TRACE(UopCache, "window_hit", cycle);
 *        CSD_TRACE(Decoy, "inject", cycle, 'i', "uops", n);
 */
#define CSD_TRACE(flag, ...)                                                 \
    do {                                                                     \
        if (::csd::traceEnabled(::csd::TraceFlag::flag))                     \
            ::csd::trace_detail::current->record(                            \
                ::csd::TraceFlag::flag, __VA_ARGS__);                        \
    } while (0)

/** CSD_TRACE for call sites without a clock (uses the time hint). */
#define CSD_TRACE_NOW(flag, ...)                                             \
    do {                                                                     \
        if (::csd::traceEnabled(::csd::TraceFlag::flag))                     \
            ::csd::trace_detail::current->recordNow(                         \
                ::csd::TraceFlag::flag, __VA_ARGS__);                        \
    } while (0)

} // namespace csd

#endif // CSD_COMMON_TRACE_HH

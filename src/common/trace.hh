/**
 * @file
 * Event tracing (gem5-DPRINTF-style flags, Chrome trace-event export).
 *
 * Components guard trace points with a named flag; a disabled flag
 * costs one mask test and branch. Enabled flags record timestamped
 * events into a bounded ring buffer that exports as Chrome
 * trace-event JSON, loadable in chrome://tracing or Perfetto: micro-op
 * cache hits vs legacy decode, decoy injections, and VPU gate/ungate
 * transitions appear on a cycle timeline, one track per flag.
 *
 * Runtime control:
 *  - CSD_TRACE=UopCache,Gating   enable flags at startup (CSV of names)
 *  - CSD_TRACE_FILE=out.json     write the Chrome trace at process exit
 *  - CSD_TRACE_CAPACITY=N        ring-buffer size (default 65536 events)
 *
 * The simulator is single-threaded; the tracer is not thread safe.
 */

#ifndef CSD_COMMON_TRACE_HH
#define CSD_COMMON_TRACE_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace csd
{

/** Named trace flags, one timeline track each. */
enum class TraceFlag : unsigned
{
    Frontend,  //!< delivery-source switches, fetch stalls
    UopCache,  //!< window probes, fills, context flushes
    Csd,       //!< context switches, stealth triggers, watchdog fires
    Decoy,     //!< decoy micro-op injections
    Gating,    //!< VPU gate/wake transitions, demand wakes
    Cache,     //!< DRAM accesses, clflushes
    Dift,      //!< tainted loads/branches detected at decode
    NumFlags,
};

namespace trace_detail
{
/** Bitmask of enabled flags; raw global so the fast path is one load. */
extern std::uint32_t mask;
} // namespace trace_detail

/** Fast-path check compiled into every trace point. */
inline bool
traceEnabled(TraceFlag flag)
{
    return trace_detail::mask & (1u << static_cast<unsigned>(flag));
}

/** True iff any flag is enabled. */
inline bool
traceAnyEnabled()
{
    return trace_detail::mask != 0;
}

/** One recorded event. Names must be string literals (not copied). */
struct TraceEvent
{
    Tick tick = 0;
    TraceFlag flag = TraceFlag::Frontend;
    const char *name = nullptr;
    char phase = 'i';  //!< Chrome phase: 'i' instant, 'B' begin, 'E' end
    const char *argName = nullptr;
    double arg = 0.0;
};

/** The process-wide tracer. */
class TraceManager
{
  public:
    /** The singleton (never destroyed; first call reads CSD_TRACE*). */
    static TraceManager &instance();

    // --- configuration ----------------------------------------------------

    /**
     * Enable the flags named in a comma-separated list ("UopCache,
     * Gating"); names are case-insensitive and unknown names warn.
     * Returns the number of flags enabled.
     */
    unsigned configure(const std::string &csv);

    void enable(TraceFlag flag);
    void disable(TraceFlag flag);
    void disableAll();
    bool enabled(TraceFlag flag) const { return traceEnabled(flag); }

    /** Resize the ring buffer (drops recorded events). */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return ring_.size(); }

    // --- recording --------------------------------------------------------

    /** Record an event at @p tick. Call only when enabled(flag). */
    void record(TraceFlag flag, const char *name, Tick tick,
                char phase = 'i', const char *arg_name = nullptr,
                double arg = 0.0);

    /** Record at the current time hint (components without a clock). */
    void recordNow(TraceFlag flag, const char *name, char phase = 'i',
                   const char *arg_name = nullptr, double arg = 0.0)
    {
        record(flag, name, timeHint_, phase, arg_name, arg);
    }

    /** Cycle stamp used by recordNow(); the simulator updates it. */
    void setTimeHint(Tick tick) { timeHint_ = tick; }
    Tick timeHint() const { return timeHint_; }

    // --- inspection / export ----------------------------------------------

    /** Number of events currently held (≤ capacity). */
    std::size_t size() const { return count_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Drop all recorded events. */
    void clear();

    /** Events in record order (oldest first). */
    std::vector<TraceEvent> events() const;

    /**
     * Write the recorded events as Chrome trace-event JSON
     * ({"traceEvents": [...]}); cycles map to microseconds so one
     * trace unit renders as one cycle.
     */
    void exportChromeTrace(std::ostream &os) const;

    /** exportChromeTrace to a file; warns and returns false on error. */
    bool exportChromeTrace(const std::string &path) const;

    // --- flag names -------------------------------------------------------

    static const char *flagName(TraceFlag flag);
    static std::optional<TraceFlag> parseFlag(const std::string &name);

  private:
    TraceManager();

    void initFromEnv();

    std::vector<TraceEvent> ring_;
    std::size_t start_ = 0;  //!< index of the oldest event
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;
    Tick timeHint_ = 0;
};

/**
 * Record a trace event iff @p flag is enabled.
 * Usage: CSD_TRACE(UopCache, "window_hit", cycle);
 *        CSD_TRACE(Decoy, "inject", cycle, 'i', "uops", n);
 */
#define CSD_TRACE(flag, ...)                                                 \
    do {                                                                     \
        if (::csd::traceEnabled(::csd::TraceFlag::flag))                     \
            ::csd::TraceManager::instance().record(                          \
                ::csd::TraceFlag::flag, __VA_ARGS__);                        \
    } while (0)

/** CSD_TRACE for call sites without a clock (uses the time hint). */
#define CSD_TRACE_NOW(flag, ...)                                             \
    do {                                                                     \
        if (::csd::traceEnabled(::csd::TraceFlag::flag))                     \
            ::csd::TraceManager::instance().recordNow(                       \
                ::csd::TraceFlag::flag, __VA_ARGS__);                        \
    } while (0)

} // namespace csd

#endif // CSD_COMMON_TRACE_HH

/**
 * @file
 * A deliberately tiny recursive-descent JSON parser.
 *
 * Originally a test-support helper; promoted into src/ so tools that
 * consume the simulator's own JSON artifacts (stats dumps, bench
 * sidecars — see obs/report.hh) can load them without an external
 * dependency. Strict enough to reject malformed output; not intended
 * as a general-purpose JSON library.
 */

#ifndef CSD_COMMON_JSON_HH
#define CSD_COMMON_JSON_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace csd::minijson
{

class JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonPtr> items;
    std::map<std::string, JsonPtr> fields;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    bool has(const std::string &key) const
    {
        return kind == Kind::Object && fields.count(key) != 0;
    }

    /** Object member access; throws if missing or not an object. */
    const JsonValue &at(const std::string &key) const
    {
        if (kind != Kind::Object)
            throw std::runtime_error("json: not an object");
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("json: missing key '" + key + "'");
        return *it->second;
    }

    /** Array element access; throws if out of range or not an array. */
    const JsonValue &at(std::size_t idx) const
    {
        if (kind != Kind::Array)
            throw std::runtime_error("json: not an array");
        if (idx >= items.size())
            throw std::runtime_error("json: index out of range");
        return *items[idx];
    }

    std::size_t size() const
    {
        return kind == Kind::Array ? items.size() : fields.size();
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonPtr parse()
    {
        JsonPtr v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after top-level value");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(const std::string &lit)
    {
        if (text_.compare(pos_, lit.size(), lit) != 0)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonPtr parseValue()
    {
        skipWs();
        auto v = std::make_shared<JsonValue>();
        const char c = peek();
        if (c == '{') {
            parseObject(*v);
        } else if (c == '[') {
            parseArray(*v);
        } else if (c == '"') {
            v->kind = JsonValue::Kind::String;
            v->str = parseString();
        } else if (c == 't') {
            if (!consumeLiteral("true"))
                fail("bad literal");
            v->kind = JsonValue::Kind::Bool;
            v->boolean = true;
        } else if (c == 'f') {
            if (!consumeLiteral("false"))
                fail("bad literal");
            v->kind = JsonValue::Kind::Bool;
        } else if (c == 'n') {
            if (!consumeLiteral("null"))
                fail("bad literal");
        } else {
            v->kind = JsonValue::Kind::Number;
            v->number = parseNumber();
        }
        return v;
    }

    void parseObject(JsonValue &v)
    {
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.fields[key] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    void parseArray(JsonValue &v)
    {
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        while (true) {
            v.items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("short \\u escape");
                    // The simulator only emits ASCII; keep the raw
                    // escape text rather than decoding code points.
                    out += "\\u" + text_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                  }
                  default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
    }

    double parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            fail("bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                fail("bad fraction");
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                fail("bad exponent");
        }
        return std::strtod(text_.substr(start, pos_ - start).c_str(),
                           nullptr);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Parse @p text, throwing std::runtime_error on malformed JSON. */
inline JsonPtr
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace csd::minijson

#endif // CSD_COMMON_JSON_HH

/**
 * @file
 * Deterministic xorshift128+ random number generator.
 *
 * Simulation results must be reproducible run-to-run, so every stochastic
 * component (workload generators, random replacement, attacker plaintext
 * choice) draws from an explicitly seeded Random instance rather than a
 * global RNG.
 */

#ifndef CSD_COMMON_RANDOM_HH
#define CSD_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace csd
{

/** A small, fast, seedable PRNG (xorshift128+). */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        reseed(seed);
    }

    /** Re-seed the generator; a zero seed is remapped to a constant. */
    void
    reseed(std::uint64_t seed)
    {
        if (seed == 0)
            seed = 0x9e3779b97f4a7c15ull;
        // SplitMix64 to fill the state from the seed.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        s0 = next();
        s1 = next();
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        std::uint64_t x = s0;
        const std::uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Next 32-bit value. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next64()); }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            csd_panic("Random::below(0)");
        return next64() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        if (hi < lo)
            csd_panic("Random::inRange: hi < lo");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next64() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return real() < p; }

  private:
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
};

} // namespace csd

#endif // CSD_COMMON_RANDOM_HH

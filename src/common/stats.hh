/**
 * @file
 * Statistics package.
 *
 * Components own a StatGroup and register named statistics with
 * descriptions; harnesses read them by name. Four statistic kinds are
 * supported, mirroring gem5's stats package:
 *
 *  - Counter:      monotonically increasing event count
 *  - Scalar:       double-valued accumulator (energy, latency sums)
 *  - Distribution: bucketed histogram with min/max/mean/stddev
 *  - Formula:      derived value computed at dump time (IPC, hit
 *                  rates, MPKI) from a captured callable
 *
 * dump() produces a gem5-style "name value # description" listing;
 * dumpJson() produces a hierarchical machine-readable document with
 * every registered statistic's name, description, and value(s).
 * valueOf("child.grandchild.stat") resolves dotted paths through the
 * group tree (used by the simulator's interval sampler).
 */

#ifndef CSD_COMMON_STATS_HH
#define CSD_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace csd
{

class StatGroup;

namespace stats_detail
{
/**
 * The flag lives in whichever ObservabilityContext is bound to this
 * thread (obs/context.hh); unbound threads point at a process-wide
 * default initialized from CSD_STATS_DETAIL. A pointer (rather than a
 * plain thread-local bool) so setStatsDetail() writes through to the
 * owning context and survives rebinds.
 */
extern bool processDefault;
// constinit: without it every cross-TU read goes through the TLS
// dynamic-init guard (__tls_init via PLT), which is measurable on the
// per-uop simulation paths that poll statsDetailEnabled().
extern constinit thread_local bool *enabled;
} // namespace stats_detail

/**
 * Gate for statistics on per-macro-op / per-load paths (histogram
 * samples). One thread-local load and a dereference when off; enable
 * via CSD_STATS_DETAIL=1 or setStatsDetail(). Counters and formulas
 * are always live — only call sites hot enough to show up in wall
 * time hide behind this.
 */
inline bool
statsDetailEnabled()
{
    return *stats_detail::enabled;
}

/** Set the flag of the context bound to this thread. */
void setStatsDetail(bool on);

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++count_; return *this; }
    Counter operator++(int) { Counter old = *this; ++count_; return old; }
    Counter &operator+=(std::uint64_t n) { count_ += n; return *this; }

    std::uint64_t value() const { return count_; }
    void reset() { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/** A double-valued statistic (accumulates or is set directly). */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }

    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * A bucketed histogram.
 *
 * Construct with [lo, hi) and a bucket count; samples below lo land in
 * the underflow bucket, samples at or above hi in the overflow bucket.
 * Moments (min/max/mean/stddev) are exact regardless of bucketing. A
 * default-constructed Distribution tracks moments only.
 */
class Distribution
{
  public:
    Distribution() = default;

    Distribution(double lo, double hi, std::size_t num_buckets)
    {
        init(lo, hi, num_buckets);
    }

    /** (Re)configure bucketing; drops all recorded samples. */
    void init(double lo, double hi, std::size_t num_buckets);

    /**
     * Record @p n occurrences of value @p v. Inline and division-free:
     * the simulator samples on per-macro-op and per-load paths.
     */
    void sample(double v, std::uint64_t n = 1)
    {
        if (n == 0)
            return;
        count_ += n;
        const double dn = static_cast<double>(n);
        sum_ += v * dn;
        sumSq_ += v * v * dn;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;

        if (buckets_.empty())
            return;
        if (v < lo_) {
            underflow_ += n;
            return;
        }
        const auto idx =
            static_cast<std::size_t>((v - lo_) * invBucketWidth_);
        if (idx >= buckets_.size())
            overflow_ += n;
        else
            buckets_[idx] += n;
    }

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    double mean() const;
    double stddev() const;

    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    double bucketLo(std::size_t i) const { return lo_ + i * bucketWidth_; }
    double bucketHi(std::size_t i) const
    {
        return lo_ + (i + 1) * bucketWidth_;
    }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    void reset();

  private:
    double lo_ = 0.0;
    double bucketWidth_ = 0.0;
    double invBucketWidth_ = 0.0;
    std::vector<std::uint64_t> buckets_;

    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A derived statistic: a callable evaluated at read/dump time.
 * Components build formulas over their counters, e.g.
 *   ipc_ = Formula([this] { return instrs_.value() / double(cycles_); });
 */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn)) {}

    Formula &operator=(std::function<double()> fn)
    {
        fn_ = std::move(fn);
        return *this;
    }

    /** Current value; non-finite results read as 0 (e.g. 0/0 ratios). */
    double value() const
    {
        if (!fn_)
            return 0.0;
        const double v = fn_();
        return std::isfinite(v) ? v : 0.0;
    }

  private:
    std::function<double()> fn_;
};

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string jsonEscape(const std::string &s);

/**
 * A named collection of statistics.
 *
 * Statistics are registered by pointer so the owning component keeps
 * fast, direct access while the group provides lookup and dumping.
 * Names must be unique within a group across all statistic kinds;
 * duplicate registration is an internal bug and panics.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under @p stat_name. */
    void addCounter(const std::string &stat_name, Counter *counter,
                    const std::string &desc);

    /** Register a double-valued scalar. */
    void addScalar(const std::string &stat_name, Scalar *scalar,
                   const std::string &desc);

    /** Register a distribution. */
    void addDistribution(const std::string &stat_name, Distribution *dist,
                         const std::string &desc);

    /** Register a derived formula. */
    void addFormula(const std::string &stat_name, Formula *formula,
                    const std::string &desc);

    /** Register a child group whose stats dump under this one. */
    void addChild(StatGroup *child);

    /** Look up a counter's current value; fatal if absent. */
    std::uint64_t counterValue(const std::string &stat_name) const;

    /** Look up a scalar's current value; fatal if absent. */
    double scalarValue(const std::string &stat_name) const;

    /** Look up a formula's current value; fatal if absent. */
    double formulaValue(const std::string &stat_name) const;

    /** Look up a registered distribution; fatal if absent. */
    const Distribution &distribution(const std::string &stat_name) const;

    /** True iff a counter named @p stat_name is registered. */
    bool hasCounter(const std::string &stat_name) const;

    /** True iff any statistic named @p stat_name is registered. */
    bool hasStat(const std::string &stat_name) const;

    /**
     * Resolve a dotted path ("mem.l1d.misses", "ipc") through child
     * groups to a numeric value (counter, scalar, or formula). Fatal
     * with the set of valid names if the path does not resolve.
     */
    double valueOf(const std::string &path) const;

    /** Non-fatal valueOf: false if the path does not resolve. */
    bool tryValueOf(const std::string &path, double &out) const;

    /** Reset all registered counters/scalars/distributions (+children). */
    void resetAll();

    /** Write "group.stat value # desc" lines for this group and children. */
    void dump(std::ostream &os) const;

    /**
     * Write this group and its children as one hierarchical JSON
     * object: {"name":..., "counters":{...}, "scalars":{...},
     * "formulas":{...}, "distributions":{...}, "groups":[...]}.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /**
     * Writer for extra JSON members injected into the root object of a
     * dump (e.g. the run-provenance manifest). Called with the output
     * stream and the member indentation prefix; must emit one or more
     * complete `"key": value` members (comma-separated, no trailing
     * comma — the dumper appends it).
     */
    using ExtraWriter =
        std::function<void(std::ostream &, const std::string &)>;

    /** As dumpJson() but with @p extra members leading the root object. */
    void dumpJson(std::ostream &os, int indent,
                  const ExtraWriter &extra) const;

    const std::string &name() const { return name_; }

    /** Names of all registered counters (this group only). */
    std::vector<std::string> counterNames() const;
    std::vector<std::string> scalarNames() const;
    std::vector<std::string> distributionNames() const;
    std::vector<std::string> formulaNames() const;

    const std::vector<StatGroup *> &children() const { return children_; }

  private:
    struct CounterEntry
    {
        Counter *counter;
        std::string desc;
    };
    struct ScalarEntry
    {
        Scalar *scalar;
        std::string desc;
    };
    struct DistEntry
    {
        Distribution *dist;
        std::string desc;
    };
    struct FormulaEntry
    {
        Formula *formula;
        std::string desc;
    };

    /** Panic if @p stat_name is already taken by any statistic kind. */
    void checkNewName(const std::string &stat_name) const;

    /** All registered statistic names, for error messages. */
    std::string registeredNames() const;

    std::string name_;
    std::map<std::string, CounterEntry> entries_;
    std::map<std::string, ScalarEntry> scalars_;
    std::map<std::string, DistEntry> dists_;
    std::map<std::string, FormulaEntry> formulas_;
    std::vector<StatGroup *> children_;
};

} // namespace csd

#endif // CSD_COMMON_STATS_HH

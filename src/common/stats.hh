/**
 * @file
 * Lightweight statistics package.
 *
 * Components own a StatGroup and register named counters/values with
 * descriptions; harnesses read them by name and dump() produces a
 * gem5-style "name value # description" listing.
 */

#ifndef CSD_COMMON_STATS_HH
#define CSD_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace csd
{

class StatGroup;

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++count_; return *this; }
    Counter &operator+=(std::uint64_t n) { count_ += n; return *this; }

    std::uint64_t value() const { return count_; }
    void reset() { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/**
 * A named collection of statistics.
 *
 * Counters are registered by pointer so the owning component keeps fast,
 * direct access while the group provides lookup and dumping.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under @p stat_name. */
    void addCounter(const std::string &stat_name, Counter *counter,
                    const std::string &desc);

    /** Register a child group whose stats dump under this one. */
    void addChild(StatGroup *child);

    /** Look up a counter's current value; fatal if absent. */
    std::uint64_t counterValue(const std::string &stat_name) const;

    /** True iff a counter named @p stat_name is registered. */
    bool hasCounter(const std::string &stat_name) const;

    /** Reset all registered counters (and children). */
    void resetAll();

    /** Write "group.stat value # desc" lines for this group and children. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /** Names of all registered counters (this group only). */
    std::vector<std::string> counterNames() const;

  private:
    struct Entry
    {
        Counter *counter;
        std::string desc;
    };

    std::string name_;
    std::map<std::string, Entry> entries_;
    std::vector<StatGroup *> children_;
};

} // namespace csd

#endif // CSD_COMMON_STATS_HH

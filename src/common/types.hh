/**
 * @file
 * Fundamental scalar types shared across the CSD simulator.
 *
 * These mirror the conventions of mainstream architecture simulators:
 * an unsigned 64-bit address space, a monotonically increasing cycle
 * count (Tick), and sequence numbers used to order in-flight micro-ops.
 */

#ifndef CSD_COMMON_TYPES_HH
#define CSD_COMMON_TYPES_HH

#include <cstdint>

namespace csd
{

/** A physical/virtual address in the simulated machine. */
using Addr = std::uint64_t;

/** A simulated clock cycle count. */
using Tick = std::uint64_t;

/** Number of cycles, used for latencies and intervals. */
using Cycles = std::uint64_t;

/** A dynamic-instruction (or micro-op) sequence number. */
using SeqNum = std::uint64_t;

/** An invalid/sentinel address. */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

/** Cache block size used throughout the hierarchy (bytes). */
constexpr unsigned cacheBlockSize = 64;

/** Mask an address down to its cache-block base. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(cacheBlockSize - 1);
}

/** Number of the cache block containing @p addr. */
constexpr Addr
blockNumber(Addr addr)
{
    return addr / cacheBlockSize;
}

} // namespace csd

#endif // CSD_COMMON_TYPES_HH

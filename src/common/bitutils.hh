/**
 * @file
 * Bit-manipulation helpers used by the decoder, caches, and crypto
 * workload generators.
 */

#ifndef CSD_COMMON_BITUTILS_HH
#define CSD_COMMON_BITUTILS_HH

#include <cstdint>
#include <type_traits>

namespace csd
{

/** Extract bits [first, last] (inclusive, last >= first) of @p val. */
template <typename T>
constexpr T
bits(T val, unsigned last, unsigned first)
{
    const unsigned nbits = last - first + 1;
    if (nbits >= sizeof(T) * 8)
        return val >> first;
    const T mask = (static_cast<T>(1) << nbits) - 1;
    return (val >> first) & mask;
}

/** Extract a single bit of @p val. */
template <typename T>
constexpr bool
bit(T val, unsigned pos)
{
    return (val >> pos) & 1;
}

/** Insert @p field into bits [first, last] of @p val. */
template <typename T>
constexpr T
insertBits(T val, unsigned last, unsigned first, T field)
{
    const unsigned nbits = last - first + 1;
    const T mask = nbits >= sizeof(T) * 8
        ? ~static_cast<T>(0)
        : (static_cast<T>(1) << nbits) - 1;
    return (val & ~(mask << first)) | ((field & mask) << first);
}

/** True iff @p val is a power of two (0 is not). */
template <typename T>
constexpr bool
isPowerOf2(T val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Floor of log2(@p val); val must be nonzero. */
template <typename T>
constexpr unsigned
floorLog2(T val)
{
    unsigned result = 0;
    while (val >>= 1)
        ++result;
    return result;
}

/** Round @p val up to the next multiple of @p align (a power of two). */
template <typename T>
constexpr T
roundUp(T val, T align)
{
    return (val + align - 1) & ~(align - 1);
}

/** Round @p val down to a multiple of @p align (a power of two). */
template <typename T>
constexpr T
roundDown(T val, T align)
{
    return val & ~(align - 1);
}

/** Rotate a 32-bit word left. */
constexpr std::uint32_t
rotl32(std::uint32_t val, unsigned amount)
{
    amount &= 31;
    if (amount == 0)
        return val;
    return (val << amount) | (val >> (32 - amount));
}

/** Rotate a 32-bit word right. */
constexpr std::uint32_t
rotr32(std::uint32_t val, unsigned amount)
{
    amount &= 31;
    if (amount == 0)
        return val;
    return (val >> amount) | (val << (32 - amount));
}

/** Population count. */
template <typename T>
constexpr unsigned
popCount(T val)
{
    unsigned count = 0;
    while (val) {
        count += val & 1;
        val >>= 1;
    }
    return count;
}

} // namespace csd

#endif // CSD_COMMON_BITUTILS_HH

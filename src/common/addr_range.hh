/**
 * @file
 * Half-open address range [start, end) used for decoy MSR ranges,
 * taint sources, and symbol extents.
 */

#ifndef CSD_COMMON_ADDR_RANGE_HH
#define CSD_COMMON_ADDR_RANGE_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace csd
{

/** A half-open range of addresses [start, end). */
struct AddrRange
{
    Addr start = 0;
    Addr end = 0;

    AddrRange() = default;
    AddrRange(Addr s, Addr e) : start(s), end(e)
    {
        if (e < s)
            csd_panic("AddrRange: end < start");
    }

    bool valid() const { return end > start; }
    Addr size() const { return end - start; }

    bool contains(Addr addr) const { return addr >= start && addr < end; }

    bool
    overlaps(const AddrRange &other) const
    {
        return start < other.end && other.start < end;
    }

    /** Number of distinct cache blocks the range touches. */
    std::uint64_t
    blockCount() const
    {
        if (!valid())
            return 0;
        return blockNumber(end - 1) - blockNumber(start) + 1;
    }

    bool
    operator==(const AddrRange &other) const
    {
        return start == other.start && end == other.end;
    }
};

} // namespace csd

#endif // CSD_COMMON_ADDR_RANGE_HH

/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic()  - an internal simulator bug; aborts.
 * fatal()  - a user error (bad configuration, bad input); exits cleanly.
 * warn()   - functionality that might not be modeled perfectly.
 * inform() - normal operating messages.
 */

#ifndef CSD_COMMON_LOGGING_HH
#define CSD_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace csd
{

namespace logging_detail
{

/**
 * A per-context log sink. An ObservabilityContext (obs/context.hh)
 * installs its sink on the thread it is bound to; warn()/inform()
 * then count messages per context, prefix them with the context label
 * so interleaved multi-simulation output stays attributable, and can
 * be silenced per context without touching the process-wide verbose
 * flag. A null thread sink means legacy process-wide behavior.
 */
struct LogSink
{
    std::string label;           //!< prefix, e.g. "ctx3" (empty = none)
    bool quiet = false;          //!< drop warn/inform entirely
    std::uint64_t warnings = 0;  //!< messages seen (even when quiet)
    std::uint64_t informs = 0;
};

/** Install @p sink for this thread (nullptr restores legacy output). */
void bindThreadSink(LogSink *sink);

/** The sink bound to this thread, or nullptr. */
LogSink *threadSink();

/** Build a message from streamable parts. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

#if defined(__GNUC__) || defined(__clang__)
#define CSD_LOGGING_COLD __attribute__((cold, noinline))
#else
#define CSD_LOGGING_COLD
#endif

/**
 * Out-of-line formatting shims for the panic/fatal macros. Keeping the
 * ostringstream formatting in a cold, noinline function matters for
 * performance, not just code size: tiny hot accessors (register file
 * reads, sparse-memory loads) carry a panic on their invariant branch,
 * and if the formatting expands inline it makes them too big for the
 * inliner to absorb into the simulation loops.
 */
template <typename... Args>
[[noreturn]] CSD_LOGGING_COLD void
panicFmt(const char *file, int line, Args &&...args)
{
    panicImpl(file, line, format(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] CSD_LOGGING_COLD void
fatalFmt(const char *file, int line, Args &&...args)
{
    fatalImpl(file, line, format(std::forward<Args>(args)...));
}
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Enable/disable inform()/warn() output (tests silence them). */
void setVerbose(bool verbose);
bool verbose();

} // namespace logging_detail

/** Abort on an internal invariant violation (simulator bug). */
#define csd_panic(...)                                                       \
    ::csd::logging_detail::panicFmt(__FILE__, __LINE__, __VA_ARGS__)

/** Exit on a user-caused unrecoverable condition. */
#define csd_fatal(...)                                                       \
    ::csd::logging_detail::fatalFmt(__FILE__, __LINE__, __VA_ARGS__)

/** Report a modeling caveat. */
template <typename... Args>
void
warn(Args &&...args)
{
    logging_detail::warnImpl(
        logging_detail::format(std::forward<Args>(args)...));
}

/** Report a normal status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    logging_detail::informImpl(
        logging_detail::format(std::forward<Args>(args)...));
}

} // namespace csd

#endif // CSD_COMMON_LOGGING_HH

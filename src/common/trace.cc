#include "common/trace.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace csd
{

namespace trace_detail
{
thread_local std::uint32_t mask = 0;
thread_local TraceManager *current = nullptr;
} // namespace trace_detail

namespace
{

const char *const flagNames[static_cast<unsigned>(TraceFlag::NumFlags)] = {
    "Frontend", "UopCache", "Csd", "Decoy", "Gating", "Cache", "Dift",
};

std::string
lower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

void
atexitExport()
{
    const char *path = std::getenv("CSD_TRACE_FILE");
    if (path && *path && TraceManager::instance().size() > 0)
        TraceManager::instance().exportChromeTrace(path);
}

} // namespace

const char *
TraceManager::flagName(TraceFlag flag)
{
    const auto idx = static_cast<unsigned>(flag);
    if (idx >= static_cast<unsigned>(TraceFlag::NumFlags))
        return "?";
    return flagNames[idx];
}

std::optional<TraceFlag>
TraceManager::parseFlag(const std::string &name)
{
    const std::string want = lower(name);
    for (unsigned i = 0; i < static_cast<unsigned>(TraceFlag::NumFlags); ++i)
        if (lower(flagNames[i]) == want)
            return static_cast<TraceFlag>(i);
    return std::nullopt;
}

TraceManager::TraceManager(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        csd_panic("TraceManager: capacity must be positive");
}

TraceManager &
TraceManager::instance()
{
    // Heap-allocated and leaked on purpose: the tracer must outlive
    // every static-destruction-order dependency and the atexit export.
    static TraceManager *manager = [] {
        auto *m = new TraceManager();
        m->initFromEnv();
        return m;
    }();
    if (!trace_detail::current)
        manager->bindToThread();
    return *manager;
}

void
TraceManager::bindToThread()
{
    trace_detail::current = this;
    trace_detail::mask = mask_;
}

void
TraceManager::initFromEnv()
{
    if (const char *cap = std::getenv("CSD_TRACE_CAPACITY"))
        setCapacity(parsePositiveSetting("CSD_TRACE_CAPACITY", cap));
    if (const char *flags = std::getenv("CSD_TRACE"))
        configure(flags);
    if (std::getenv("CSD_TRACE_FILE"))
        std::atexit(atexitExport);
}

unsigned
TraceManager::configure(const std::string &csv)
{
    unsigned enabled_count = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string token = csv.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding whitespace.
        while (!token.empty() && std::isspace(
                   static_cast<unsigned char>(token.front())))
            token.erase(token.begin());
        while (!token.empty() &&
               std::isspace(static_cast<unsigned char>(token.back())))
            token.pop_back();
        if (token.empty())
            continue;
        if (lower(token) == "all") {
            for (unsigned i = 0;
                 i < static_cast<unsigned>(TraceFlag::NumFlags); ++i) {
                enable(static_cast<TraceFlag>(i));
                ++enabled_count;
            }
        } else if (auto flag = parseFlag(token)) {
            enable(*flag);
            ++enabled_count;
        } else {
            std::string known;
            for (unsigned i = 0;
                 i < static_cast<unsigned>(TraceFlag::NumFlags); ++i) {
                if (!known.empty())
                    known += ", ";
                known += flagNames[i];
            }
            warn("unknown trace flag '", token, "' (known: ", known, ")");
        }
    }
    return enabled_count;
}

void
TraceManager::syncThreadMask()
{
    if (trace_detail::current == this)
        trace_detail::mask = mask_;
}

void
TraceManager::enable(TraceFlag flag)
{
    mask_ |= 1u << static_cast<unsigned>(flag);
    syncThreadMask();
}

void
TraceManager::disable(TraceFlag flag)
{
    mask_ &= ~(1u << static_cast<unsigned>(flag));
    syncThreadMask();
}

void
TraceManager::disableAll()
{
    mask_ = 0;
    syncThreadMask();
}

void
TraceManager::setMask(std::uint32_t mask)
{
    mask_ = mask;
    syncThreadMask();
}

void
TraceManager::setCapacity(std::size_t capacity)
{
    if (capacity == 0)
        csd_panic("TraceManager: capacity must be positive");
    capacity_ = capacity;
    ring_.clear();
    ring_.shrink_to_fit();
    start_ = 0;
    count_ = 0;
    dropped_ = 0;
}

void
TraceManager::clear()
{
    start_ = 0;
    count_ = 0;
    dropped_ = 0;
}

void
TraceManager::record(TraceFlag flag, const char *name, Tick tick, char phase,
                     const char *arg_name, double arg)
{
    // Lazy allocation: per-simulation tracers exist whether or not
    // tracing is on, so don't pay for the ring until an event lands.
    if (ring_.empty())
        ring_.resize(capacity_);
    TraceEvent &slot = ring_[(start_ + count_) % ring_.size()];
    if (count_ == ring_.size()) {
        // Full: overwrite the oldest event.
        start_ = (start_ + 1) % ring_.size();
        ++dropped_;
    } else {
        ++count_;
    }
    slot = TraceEvent{tick, flag, name, phase, arg_name, arg};
}

std::vector<TraceEvent>
TraceManager::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start_ + i) % ring_.size()]);
    return out;
}

void
TraceManager::exportChromeTrace(std::ostream &os) const
{
    os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";

    // Metadata: name one track (tid) per flag so Perfetto labels rows.
    bool first = true;
    for (unsigned i = 0; i < static_cast<unsigned>(TraceFlag::NumFlags);
         ++i) {
        os << (first ? "" : ",\n")
           << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
           << "\"tid\": " << i << ", \"args\": {\"name\": \""
           << flagNames[i] << "\"}}";
        first = false;
    }

    for (std::size_t i = 0; i < count_; ++i) {
        const TraceEvent &ev = ring_[(start_ + i) % ring_.size()];
        os << (first ? "" : ",\n") << "    {\"name\": \""
           << jsonEscape(ev.name ? ev.name : "?") << "\", \"cat\": \""
           << flagName(ev.flag) << "\", \"ph\": \"" << ev.phase
           << "\", \"ts\": " << ev.tick << ", \"pid\": 0, \"tid\": "
           << static_cast<unsigned>(ev.flag);
        if (ev.phase == 'i')
            os << ", \"s\": \"t\"";
        if (ev.argName) {
            os << ", \"args\": {\"" << jsonEscape(ev.argName) << "\": ";
            if (std::isfinite(ev.arg))
                os << ev.arg;
            else
                os << "null";
            os << "}";
        }
        os << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

bool
TraceManager::exportChromeTrace(const std::string &path) const
{
    std::ofstream file(path);
    if (!file) {
        warn("TraceManager: cannot open trace file '", path, "'");
        return false;
    }
    exportChromeTrace(file);
    inform("trace: wrote ", count_, " events to ", path,
           dropped_ ? " (ring overflowed; oldest events dropped)" : "");
    return static_cast<bool>(file);
}

} // namespace csd

#include "common/env.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace csd
{

namespace
{

/** strtoll with the full strictness checklist; false on any defect. */
bool
parseLongLong(const char *value, long long &out)
{
    if (!value || !*value)
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoll(value, &end, 10);
    return errno != ERANGE && end && !*end;
}

} // namespace

std::size_t
parsePositiveSetting(std::string_view name, const char *value)
{
    long long n = 0;
    if (!parseLongLong(value, n) || n <= 0)
        csd_fatal(name, "='", value ? value : "",
                  "' is not a positive integer");
    return static_cast<std::size_t>(n);
}

unsigned
parseNonNegativeSetting(std::string_view name, const char *value)
{
    long long n = 0;
    if (!parseLongLong(value, n) || n < 0)
        csd_fatal(name, "='", value ? value : "",
                  "' is not a non-negative integer (0 = auto)");
    return static_cast<unsigned>(n);
}

bool
parseBoolSetting(std::string_view name, const char *value)
{
    if (value && value[0] && !value[1] &&
        (value[0] == '0' || value[0] == '1'))
        return value[0] == '1';
    csd_fatal(name, "='", value ? value : "", "' is not 0 or 1");
    return false;  // unreachable; csd_fatal throws
}

} // namespace csd

#include "common/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace csd
{
namespace logging_detail
{

namespace
{
bool verboseFlag = true;

thread_local LogSink *tlsSink = nullptr;
} // namespace

void
bindThreadSink(LogSink *sink)
{
    tlsSink = sink;
}

LogSink *
threadSink()
{
    return tlsSink;
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throw rather than exit(1) so that library users (and death tests)
    // can recover from user-level configuration errors.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (LogSink *sink = tlsSink) {
        ++sink->warnings;
        if (sink->quiet || !verboseFlag)
            return;
        if (!sink->label.empty()) {
            std::fprintf(stderr, "warn: [%s] %s\n", sink->label.c_str(),
                         msg.c_str());
            return;
        }
    }
    if (verboseFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (LogSink *sink = tlsSink) {
        ++sink->informs;
        if (sink->quiet || !verboseFlag)
            return;
        if (!sink->label.empty()) {
            std::fprintf(stderr, "info: [%s] %s\n", sink->label.c_str(),
                         msg.c_str());
            return;
        }
    }
    if (verboseFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace logging_detail
} // namespace csd

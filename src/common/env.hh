/**
 * @file
 * Strict parsing for integer environment/CLI settings.
 *
 * Every numeric knob (CSD_TRACE_CAPACITY, CSD_LIFECYCLE_CAPACITY,
 * CSD_BENCH_JOBS, --jobs) goes through these helpers so a typo'd
 * value fails loudly — csd_fatal, which throws std::runtime_error —
 * instead of silently falling back to a default and producing a run
 * that looks configured but isn't.
 */

#ifndef CSD_COMMON_ENV_HH
#define CSD_COMMON_ENV_HH

#include <cstddef>
#include <string_view>

namespace csd
{

/**
 * Parse @p value as a strictly positive integer. @p name labels the
 * setting in the error ("CSD_TRACE_CAPACITY='x' is not a positive
 * integer"). Fatal (throws) on empty, trailing junk, zero, negative,
 * or overflow.
 */
std::size_t parsePositiveSetting(std::string_view name, const char *value);

/**
 * Parse @p value as a non-negative integer (settings where 0 means
 * "auto", e.g. jobs counts). Fatal (throws) on malformed input.
 */
unsigned parseNonNegativeSetting(std::string_view name, const char *value);

/**
 * Parse @p value as a boolean toggle: exactly "0" or "1". Fatal
 * (throws) on anything else ("true", "yes", "01", trailing junk),
 * so a typo'd CSD_SUPERBLOCK=ture fails loudly instead of silently
 * enabling the default.
 */
bool parseBoolSetting(std::string_view name, const char *value);

} // namespace csd

#endif // CSD_COMMON_ENV_HH

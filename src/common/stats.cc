#include "common/stats.hh"

#include <iomanip>

#include "common/logging.hh"

namespace csd
{

void
StatGroup::addCounter(const std::string &stat_name, Counter *counter,
                      const std::string &desc)
{
    if (!counter)
        csd_panic("StatGroup::addCounter: null counter for ", stat_name);
    if (entries_.count(stat_name))
        csd_panic("StatGroup ", name_, ": duplicate counter ", stat_name);
    entries_[stat_name] = Entry{counter, desc};
}

void
StatGroup::addChild(StatGroup *child)
{
    if (!child)
        csd_panic("StatGroup::addChild: null child");
    children_.push_back(child);
}

std::uint64_t
StatGroup::counterValue(const std::string &stat_name) const
{
    auto it = entries_.find(stat_name);
    if (it == entries_.end())
        csd_fatal("StatGroup ", name_, ": unknown counter ", stat_name);
    return it->second.counter->value();
}

bool
StatGroup::hasCounter(const std::string &stat_name) const
{
    return entries_.count(stat_name) != 0;
}

void
StatGroup::resetAll()
{
    for (auto &kv : entries_)
        kv.second.counter->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : entries_) {
        os << std::left << std::setw(40) << (name_ + "." + kv.first)
           << " " << std::right << std::setw(16)
           << kv.second.counter->value()
           << "  # " << kv.second.desc << "\n";
    }
    for (const StatGroup *child : children_)
        child->dump(os);
}

std::vector<std::string>
StatGroup::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto &kv : entries_)
        names.push_back(kv.first);
    return names;
}

} // namespace csd

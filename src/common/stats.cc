#include "common/stats.hh"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace csd
{

namespace stats_detail
{

bool processDefault = [] {
    const char *env = std::getenv("CSD_STATS_DETAIL");
    return env && *env && *env != '0';
}();

constinit thread_local bool *enabled = &processDefault;

} // namespace stats_detail

void
setStatsDetail(bool on)
{
    *stats_detail::enabled = on;
}

// --- Distribution ----------------------------------------------------------

void
Distribution::init(double lo, double hi, std::size_t num_buckets)
{
    if (num_buckets > 0 && hi <= lo)
        csd_panic("Distribution::init: empty range [", lo, ", ", hi, ")");
    lo_ = lo;
    bucketWidth_ = num_buckets ? (hi - lo) / static_cast<double>(num_buckets)
                               : 0.0;
    invBucketWidth_ = num_buckets ? 1.0 / bucketWidth_ : 0.0;
    buckets_.assign(num_buckets, 0);
    reset();
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    underflow_ = 0;
    overflow_ = 0;
    sum_ = 0.0;
    sumSq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

// --- JSON helpers ----------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/** Format a double as a JSON number (non-finite values become null). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os << std::setprecision(15) << v;
    return os.str();
}

std::string
pad(int indent)
{
    return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

} // namespace

// --- StatGroup -------------------------------------------------------------

std::string
StatGroup::registeredNames() const
{
    std::string names;
    auto append = [&names](const std::string &n) {
        if (!names.empty())
            names += ", ";
        names += n;
    };
    for (const auto &kv : entries_)
        append(kv.first);
    for (const auto &kv : scalars_)
        append(kv.first);
    for (const auto &kv : dists_)
        append(kv.first);
    for (const auto &kv : formulas_)
        append(kv.first);
    return names.empty() ? "<none>" : names;
}

void
StatGroup::checkNewName(const std::string &stat_name) const
{
    if (hasStat(stat_name))
        csd_panic("StatGroup ", name_, ": duplicate stat registration '",
                  stat_name, "'");
}

void
StatGroup::addCounter(const std::string &stat_name, Counter *counter,
                      const std::string &desc)
{
    if (!counter)
        csd_panic("StatGroup::addCounter: null counter for ", stat_name);
    checkNewName(stat_name);
    entries_[stat_name] = CounterEntry{counter, desc};
}

void
StatGroup::addScalar(const std::string &stat_name, Scalar *scalar,
                     const std::string &desc)
{
    if (!scalar)
        csd_panic("StatGroup::addScalar: null scalar for ", stat_name);
    checkNewName(stat_name);
    scalars_[stat_name] = ScalarEntry{scalar, desc};
}

void
StatGroup::addDistribution(const std::string &stat_name, Distribution *dist,
                           const std::string &desc)
{
    if (!dist)
        csd_panic("StatGroup::addDistribution: null distribution for ",
                  stat_name);
    checkNewName(stat_name);
    dists_[stat_name] = DistEntry{dist, desc};
}

void
StatGroup::addFormula(const std::string &stat_name, Formula *formula,
                      const std::string &desc)
{
    if (!formula)
        csd_panic("StatGroup::addFormula: null formula for ", stat_name);
    checkNewName(stat_name);
    formulas_[stat_name] = FormulaEntry{formula, desc};
}

void
StatGroup::addChild(StatGroup *child)
{
    if (!child)
        csd_panic("StatGroup::addChild: null child");
    children_.push_back(child);
}

std::uint64_t
StatGroup::counterValue(const std::string &stat_name) const
{
    auto it = entries_.find(stat_name);
    if (it == entries_.end())
        csd_fatal("StatGroup ", name_, ": unknown counter '", stat_name,
                  "' (registered: ", registeredNames(), ")");
    return it->second.counter->value();
}

double
StatGroup::scalarValue(const std::string &stat_name) const
{
    auto it = scalars_.find(stat_name);
    if (it == scalars_.end())
        csd_fatal("StatGroup ", name_, ": unknown scalar '", stat_name,
                  "' (registered: ", registeredNames(), ")");
    return it->second.scalar->value();
}

double
StatGroup::formulaValue(const std::string &stat_name) const
{
    auto it = formulas_.find(stat_name);
    if (it == formulas_.end())
        csd_fatal("StatGroup ", name_, ": unknown formula '", stat_name,
                  "' (registered: ", registeredNames(), ")");
    return it->second.formula->value();
}

const Distribution &
StatGroup::distribution(const std::string &stat_name) const
{
    auto it = dists_.find(stat_name);
    if (it == dists_.end())
        csd_fatal("StatGroup ", name_, ": unknown distribution '", stat_name,
                  "' (registered: ", registeredNames(), ")");
    return *it->second.dist;
}

bool
StatGroup::hasCounter(const std::string &stat_name) const
{
    return entries_.count(stat_name) != 0;
}

bool
StatGroup::hasStat(const std::string &stat_name) const
{
    return entries_.count(stat_name) != 0 ||
           scalars_.count(stat_name) != 0 ||
           dists_.count(stat_name) != 0 ||
           formulas_.count(stat_name) != 0;
}

bool
StatGroup::tryValueOf(const std::string &path, double &out) const
{
    const auto dot = path.find('.');
    if (dot != std::string::npos) {
        const std::string head = path.substr(0, dot);
        const std::string rest = path.substr(dot + 1);
        for (const StatGroup *child : children_)
            if (child->name() == head)
                return child->tryValueOf(rest, out);
        return false;
    }
    if (auto it = entries_.find(path); it != entries_.end()) {
        out = static_cast<double>(it->second.counter->value());
        return true;
    }
    if (auto it = scalars_.find(path); it != scalars_.end()) {
        out = it->second.scalar->value();
        return true;
    }
    if (auto it = formulas_.find(path); it != formulas_.end()) {
        out = it->second.formula->value();
        return true;
    }
    return false;
}

double
StatGroup::valueOf(const std::string &path) const
{
    double out = 0.0;
    if (!tryValueOf(path, out))
        csd_fatal("StatGroup ", name_, ": path '", path,
                  "' does not resolve to a counter, scalar, or formula ",
                  "(this group has: ", registeredNames(), ")");
    return out;
}

void
StatGroup::resetAll()
{
    for (auto &kv : entries_)
        kv.second.counter->reset();
    for (auto &kv : scalars_)
        kv.second.scalar->reset();
    for (auto &kv : dists_)
        kv.second.dist->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

void
StatGroup::dump(std::ostream &os) const
{
    auto line = [&os, this](const std::string &stat, const auto &value,
                            const std::string &desc) {
        os << std::left << std::setw(40) << (name_ + "." + stat) << " "
           << std::right << std::setw(16) << value << "  # " << desc
           << "\n";
    };
    for (const auto &kv : entries_)
        line(kv.first, kv.second.counter->value(), kv.second.desc);
    for (const auto &kv : scalars_)
        line(kv.first, kv.second.scalar->value(), kv.second.desc);
    for (const auto &kv : formulas_)
        line(kv.first, kv.second.formula->value(), kv.second.desc);
    for (const auto &kv : dists_) {
        const Distribution &d = *kv.second.dist;
        std::ostringstream summary;
        summary << "count=" << d.count() << " mean=" << d.mean()
                << " stddev=" << d.stddev() << " min=" << d.min()
                << " max=" << d.max();
        line(kv.first, summary.str(), kv.second.desc);
    }
    for (const StatGroup *child : children_)
        child->dump(os);
}

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    dumpJson(os, indent, ExtraWriter());
}

void
StatGroup::dumpJson(std::ostream &os, int indent,
                    const ExtraWriter &extra) const
{
    const std::string p0 = pad(indent);
    const std::string p1 = pad(indent + 1);
    const std::string p2 = pad(indent + 2);

    os << p0 << "{\n";
    // Extra members (e.g. the run-provenance manifest) are written
    // first so readers that only care about them need not scan the
    // whole document; the writer emits complete `"key": value` members
    // given the member indentation prefix.
    if (extra) {
        extra(os, p1);
        os << ",\n";
    }
    os << p1 << "\"name\": \"" << jsonEscape(name_) << "\",\n";

    // One {"name": {"value": ..., "desc": ...}} section per stat kind.
    auto section = [&](const char *label, const auto &entries,
                       auto &&emit_value, bool trailing_comma) {
        os << p1 << "\"" << label << "\": {";
        bool first = true;
        for (const auto &kv : entries) {
            os << (first ? "\n" : ",\n") << p2 << "\""
               << jsonEscape(kv.first) << "\": {\"value\": ";
            emit_value(kv.second);
            os << ", \"desc\": \"" << jsonEscape(kv.second.desc) << "\"}";
            first = false;
        }
        os << (first ? "" : "\n" + p1) << "}" << (trailing_comma ? "," : "")
           << "\n";
    };

    section("counters", entries_,
            [&os](const CounterEntry &e) { os << e.counter->value(); },
            true);
    section("scalars", scalars_,
            [&os](const ScalarEntry &e) {
                os << jsonNumber(e.scalar->value());
            },
            true);
    section("formulas", formulas_,
            [&os](const FormulaEntry &e) {
                os << jsonNumber(e.formula->value());
            },
            true);

    // Distributions carry the full histogram, not just a value.
    os << p1 << "\"distributions\": {";
    bool first = true;
    for (const auto &kv : dists_) {
        const Distribution &d = *kv.second.dist;
        os << (first ? "\n" : ",\n") << p2 << "\"" << jsonEscape(kv.first)
           << "\": {\"desc\": \"" << jsonEscape(kv.second.desc)
           << "\", \"count\": " << d.count()
           << ", \"min\": " << jsonNumber(d.min())
           << ", \"max\": " << jsonNumber(d.max())
           << ", \"mean\": " << jsonNumber(d.mean())
           << ", \"stddev\": " << jsonNumber(d.stddev())
           << ", \"underflow\": " << d.underflow()
           << ", \"overflow\": " << d.overflow() << ", \"buckets\": [";
        for (std::size_t i = 0; i < d.numBuckets(); ++i) {
            os << (i ? ", " : "") << "{\"lo\": " << jsonNumber(d.bucketLo(i))
               << ", \"hi\": " << jsonNumber(d.bucketHi(i))
               << ", \"count\": " << d.bucketCount(i) << "}";
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n" + p1) << "},\n";

    os << p1 << "\"groups\": [";
    for (std::size_t i = 0; i < children_.size(); ++i) {
        os << (i ? ",\n" : "\n");
        children_[i]->dumpJson(os, indent + 2);
    }
    os << (children_.empty() ? "" : "\n" + p1) << "]\n";
    os << p0 << "}";
}

std::vector<std::string>
StatGroup::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto &kv : entries_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatGroup::scalarNames() const
{
    std::vector<std::string> names;
    names.reserve(scalars_.size());
    for (const auto &kv : scalars_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatGroup::distributionNames() const
{
    std::vector<std::string> names;
    names.reserve(dists_.size());
    for (const auto &kv : dists_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatGroup::formulaNames() const
{
    std::vector<std::string> names;
    names.reserve(formulas_.size());
    for (const auto &kv : formulas_)
        names.push_back(kv.first);
    return names;
}

} // namespace csd

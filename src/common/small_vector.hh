/**
 * @file
 * A vector with inline storage for its first N elements.
 *
 * The simulator's hot loop builds one micro-op flow per macro-op and
 * one dynamic-uop list per executed flow; almost all of them are a
 * handful of elements. SmallVector keeps those on the stack (or inside
 * the owning object) and only touches the heap when a flow outgrows
 * its inline capacity — decoy-expanded or microsequenced flows — so
 * the per-instruction fast path performs zero allocations.
 *
 * The interface is the subset of std::vector the simulator uses.
 * Iterators are raw pointers; like std::vector, they are invalidated
 * by any operation that grows the container past its capacity.
 */

#ifndef CSD_COMMON_SMALL_VECTOR_HH
#define CSD_COMMON_SMALL_VECTOR_HH

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace csd
{

template <typename T, std::size_t N>
class SmallVector
{
    static_assert(N > 0, "SmallVector needs a nonzero inline capacity");

  public:
    using value_type = T;
    using size_type = std::size_t;
    using iterator = T *;
    using const_iterator = const T *;
    using reference = T &;
    using const_reference = const T &;

    SmallVector() : data_(inlinePtr()), size_(0), capacity_(N) {}

    explicit SmallVector(size_type count, const T &value = T())
        : SmallVector()
    {
        assign(count, value);
    }

    SmallVector(std::initializer_list<T> init) : SmallVector()
    {
        assign(init.begin(), init.end());
    }

    template <typename InputIt,
              typename = typename std::iterator_traits<
                  InputIt>::iterator_category>
    SmallVector(InputIt first, InputIt last) : SmallVector()
    {
        assign(first, last);
    }

    SmallVector(const SmallVector &other) : SmallVector()
    {
        assign(other.begin(), other.end());
    }

    SmallVector(SmallVector &&other) noexcept : SmallVector()
    {
        stealOrMove(std::move(other));
    }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other)
            assign(other.begin(), other.end());
        return *this;
    }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            stealOrMove(std::move(other));
        }
        return *this;
    }

    SmallVector &
    operator=(std::initializer_list<T> init)
    {
        assign(init.begin(), init.end());
        return *this;
    }

    ~SmallVector() { destroyAll(); }

    // --- capacity ---------------------------------------------------------

    size_type size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_type capacity() const { return capacity_; }
    static constexpr size_type inlineCapacity() { return N; }

    /** True while the elements live in the inline buffer. */
    bool usesInlineStorage() const { return data_ == inlinePtr(); }

    void
    reserve(size_type new_cap)
    {
        if (new_cap > capacity_)
            grow(new_cap);
    }

    // --- element access ---------------------------------------------------

    T *data() { return data_; }
    const T *data() const { return data_; }

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }
    const_iterator cbegin() const { return data_; }
    const_iterator cend() const { return data_ + size_; }

    reference operator[](size_type i) { return data_[i]; }
    const_reference operator[](size_type i) const { return data_[i]; }

    reference front() { return data_[0]; }
    const_reference front() const { return data_[0]; }
    reference back() { return data_[size_ - 1]; }
    const_reference back() const { return data_[size_ - 1]; }

    // --- modifiers --------------------------------------------------------

    void
    clear()
    {
        std::destroy(begin(), end());
        size_ = 0;
    }

    void
    push_back(const T &value)
    {
        emplace_back(value);
    }

    void
    push_back(T &&value)
    {
        emplace_back(std::move(value));
    }

    template <typename... Args>
    reference
    emplace_back(Args &&...args)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        T *slot = data_ + size_;
        ::new (static_cast<void *>(slot)) T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    void
    pop_back()
    {
        --size_;
        std::destroy_at(data_ + size_);
    }

    void
    resize(size_type count, const T &value = T())
    {
        if (count < size_) {
            std::destroy(begin() + count, end());
            size_ = count;
            return;
        }
        reserve(count);
        while (size_ < count)
            emplace_back(value);
    }

    void
    assign(size_type count, const T &value)
    {
        clear();
        reserve(count);
        while (size_ < count)
            emplace_back(value);
    }

    template <typename InputIt,
              typename = typename std::iterator_traits<
                  InputIt>::iterator_category>
    void
    assign(InputIt first, InputIt last)
    {
        clear();
        reserve(static_cast<size_type>(std::distance(first, last)));
        for (; first != last; ++first)
            emplace_back(*first);
    }

    iterator
    insert(const_iterator pos, const T &value)
    {
        // Copy first: `value` may alias an element that openGap shifts.
        T tmp(value);
        return insert(pos, std::move(tmp));
    }

    iterator
    insert(const_iterator pos, T &&value)
    {
        const size_type at = static_cast<size_type>(pos - data_);
        openGap(at, 1);
        data_[at] = std::move(value);
        return data_ + at;
    }

    /**
     * Insert [first, last) before @p pos. The range must not alias this
     * container's storage (matching how the simulator splices decoy /
     * MCU uop sequences built in separate buffers).
     */
    template <typename InputIt,
              typename = typename std::iterator_traits<
                  InputIt>::iterator_category>
    iterator
    insert(const_iterator pos, InputIt first, InputIt last)
    {
        const size_type at = static_cast<size_type>(pos - data_);
        const size_type count =
            static_cast<size_type>(std::distance(first, last));
        if (count == 0)
            return data_ + at;
        openGap(at, count);
        // openGap leaves [at, at+count) as moved-from or
        // default-constructed slots; overwrite them by assignment.
        std::copy(first, last, data_ + at);
        return data_ + at;
    }

    iterator
    erase(const_iterator pos)
    {
        return erase(pos, pos + 1);
    }

    iterator
    erase(const_iterator first, const_iterator last)
    {
        T *dst = data_ + (first - data_);
        T *src = data_ + (last - data_);
        T *stop = std::move(src, end(), dst);
        std::destroy(stop, end());
        size_ = static_cast<size_type>(stop - data_);
        return dst;
    }

    bool
    operator==(const SmallVector &other) const
    {
        return size_ == other.size_ &&
               std::equal(begin(), end(), other.begin());
    }

  private:
    T *
    inlinePtr()
    {
        return std::launder(reinterpret_cast<T *>(inline_));
    }

    const T *
    inlinePtr() const
    {
        return std::launder(reinterpret_cast<const T *>(inline_));
    }

    void
    destroyAll()
    {
        std::destroy(begin(), end());
        if (!usesInlineStorage())
            ::operator delete(data_);
        data_ = inlinePtr();
        size_ = 0;
        capacity_ = N;
    }

    /** Move elements out of @p other, stealing its heap buffer if any. */
    void
    stealOrMove(SmallVector &&other)
    {
        if (!other.usesInlineStorage()) {
            data_ = other.data_;
            size_ = other.size_;
            capacity_ = other.capacity_;
        } else {
            data_ = inlinePtr();
            capacity_ = N;
            size_ = other.size_;
            std::uninitialized_move(other.begin(), other.end(), data_);
            std::destroy(other.begin(), other.end());
        }
        other.data_ = other.inlinePtr();
        other.size_ = 0;
        other.capacity_ = N;
    }

    void
    grow(size_type min_cap)
    {
        size_type new_cap = std::max<size_type>(capacity_ * 2, N);
        new_cap = std::max(new_cap, min_cap);
        T *fresh = static_cast<T *>(::operator new(new_cap * sizeof(T)));
        std::uninitialized_move(begin(), end(), fresh);
        std::destroy(begin(), end());
        if (!usesInlineStorage())
            ::operator delete(data_);
        data_ = fresh;
        capacity_ = new_cap;
    }

    /**
     * Open @p count element slots at index @p at, shifting the tail
     * right. The gap's slots are left constructed (moved-from tail
     * elements or value-initialized) so callers may assign into them.
     */
    void
    openGap(size_type at, size_type count)
    {
        reserve(size_ + count);
        // The slots past the old size are raw memory: construct them,
        // then shift the tail right within the initialized prefix.
        const size_type old_size = size_;
        for (size_type i = 0; i < count; ++i)
            ::new (static_cast<void *>(data_ + old_size + i)) T();
        size_ = old_size + count;
        std::move_backward(data_ + at, data_ + old_size, data_ + size_);
    }

    T *data_;
    size_type size_;
    size_type capacity_;
    alignas(T) std::byte inline_[N * sizeof(T)];
};

} // namespace csd

#endif // CSD_COMMON_SMALL_VECTOR_HH
